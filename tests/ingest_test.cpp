// The parallel ingest pipeline's determinism contract (DESIGN.md §13):
// the LoadedGraph it produces — graph, original_ids, comments,
// declared_nodes — is byte-identical to the serial loader at any thread
// count and any chunk size.  graph::loaded_graph_digest turns that into a
// one-string compare; these suites pin it across thread counts, chunk
// sizes that force lines/comments/headers to straddle chunk boundaries,
// sparse and dense id spaces, and the error paths (which must report the
// serial loader's exact message, global line number included).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/digest.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "ingest/ingest.hpp"
#include "ingest/orient.hpp"
#include "core/triangle_cpu.hpp"
#include "util/error.hpp"

namespace lgg::ingest {
namespace {

using graph::Graph;
using graph::LoadedGraph;

std::string snap_text(const Graph& g, const std::string& comment = {}) {
  std::ostringstream out;
  graph::write_snap_edge_list(out, g, comment);
  return out.str();
}

LoadedGraph serial_reference(const std::string& text,
                             bool pad = false) {
  std::istringstream in(text);
  graph::SnapReadOptions opts;
  opts.pad_to_declared_nodes = pad;
  return graph::read_snap_edge_list(in, opts);
}

/// Field-by-field equality plus the digest: a digest mismatch alone would
/// prove divergence, but comparing fields first localises the failure.
void expect_identical(const LoadedGraph& got, const LoadedGraph& want) {
  EXPECT_EQ(got.graph.num_vertices(), want.graph.num_vertices());
  EXPECT_EQ(got.graph.num_edges(), want.graph.num_edges());
  EXPECT_EQ(got.original_ids, want.original_ids);
  EXPECT_EQ(got.comments, want.comments);
  EXPECT_EQ(got.declared_nodes, want.declared_nodes);
  EXPECT_EQ(graph::loaded_graph_digest(got), graph::loaded_graph_digest(want));
}

void expect_parallel_matches_serial(const std::string& text,
                                    bool pad = false) {
  const LoadedGraph want = serial_reference(text, pad);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    for (const std::size_t chunk_bytes : {std::size_t{7}, std::size_t{64},
                                          std::size_t{4u << 20}}) {
      IngestOptions opts;
      opts.threads = threads;
      opts.chunk_bytes = chunk_bytes;
      opts.pad_to_declared_nodes = pad;
      const IngestResult got = load_snap_buffer(text, opts);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " chunk_bytes=" + std::to_string(chunk_bytes));
      expect_identical(got.loaded, want);
    }
  }
}

TEST(IngestDeterminism, MatchesSerialOnGenerators) {
  expect_parallel_matches_serial(snap_text(graph::gnm(400, 2000, 7)));
  expect_parallel_matches_serial(snap_text(graph::rmat(9, 8, 3)));
  expect_parallel_matches_serial(
      snap_text(graph::barabasi_albert(300, 5, 11)));
}

TEST(IngestDeterminism, SparseIdsFirstSeenOrder) {
  // Raw ids far above the edge count force the hashed compaction path;
  // interleaved magnitudes pin the first-seen-order id assignment.
  const std::string text =
      "900000000000 7\n"
      "7 31\n"
      "123456789123456789 900000000000\n"
      "2 123456789123456789\n"
      "31 2\n";
  expect_parallel_matches_serial(text);
  const IngestResult r = load_snap_buffer(text);
  EXPECT_EQ(r.loaded.original_ids,
            (std::vector<std::uint64_t>{900000000000ULL, 7, 31,
                                        123456789123456789ULL, 2}));
}

TEST(IngestDeterminism, CommentsAndHeadersStraddleChunks) {
  // With chunk_bytes as small as 7 every construct here crosses a chunk
  // boundary somewhere; headers must still merge last-one-wins and the
  // comments must come back in file order.
  const std::string text =
      "# Directed graph: example\n"
      "# Nodes: 4 Edges: 3\n"
      "10\t20\n"
      "20 30\n"
      "\n"
      "   # indented comment\n"
      "# Nodes: 6 Edges: 3\n"
      "30\t10\n";
  expect_parallel_matches_serial(text);
  expect_parallel_matches_serial(text, /*pad=*/true);
  const IngestResult r = load_snap_buffer(text);
  ASSERT_TRUE(r.loaded.declared_nodes.has_value());
  EXPECT_EQ(*r.loaded.declared_nodes, 6u);  // last header wins
  EXPECT_EQ(r.loaded.comments.size(), 4u);
}

TEST(IngestDeterminism, DuplicatesAndSelfLoops) {
  const std::string text = "1 2\n2 1\n1 2\n3 3\n2 3\n";
  expect_parallel_matches_serial(text);
  const IngestResult r = load_snap_buffer(text);
  EXPECT_EQ(r.loaded.graph.num_edges(), 2u);
  EXPECT_EQ(r.stats.duplicate_edges, 2u);
  EXPECT_EQ(r.stats.self_loops, 1u);
}

TEST(IngestDeterminism, EmptyAndAllCommentFiles) {
  expect_parallel_matches_serial("");
  expect_parallel_matches_serial("# only\n# comments\n\n");
  const IngestResult r = load_snap_buffer("# only\n# comments\n\n");
  EXPECT_EQ(r.loaded.graph.num_vertices(), 0u);
  EXPECT_EQ(r.loaded.comments.size(), 2u);
  EXPECT_EQ(r.stats.lines, 3u);
}

TEST(IngestErrors, MalformedLineReportsGlobalLineNumber) {
  // The bad line sits deep enough that with tiny chunks it lands in a
  // late chunk; the reported number must still be global, and the whole
  // message must equal the serial loader's.
  std::string text;
  for (int i = 0; i < 100; ++i)
    text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  text += "not numbers\n";

  std::string serial_message;
  try {
    serial_reference(text);
    FAIL() << "serial loader accepted the malformed line";
  } catch (const lgg::Error& e) {
    serial_message = e.what();
  }
  EXPECT_NE(serial_message.find("malformed line 101"), std::string::npos);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    IngestOptions opts;
    opts.threads = threads;
    opts.chunk_bytes = 16;
    try {
      load_snap_buffer(text, opts);
      FAIL() << "parallel loader accepted the malformed line";
    } catch (const lgg::Error& e) {
      EXPECT_EQ(std::string(e.what()), serial_message);
    }
  }
}

TEST(IngestErrors, FirstMalformedLineWinsAcrossChunks) {
  IngestOptions opts;
  opts.threads = 8;
  opts.chunk_bytes = 4;  // both bad lines parse in different chunks
  try {
    load_snap_buffer("1 2\nbad early\n3 4\nbad late\n", opts);
    FAIL() << "malformed input accepted";
  } catch (const lgg::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2: 'bad early'"),
              std::string::npos);
  }
}

TEST(IngestFile, LoadsWhatItWrites) {
  const Graph g = graph::gnm(200, 900, 5);
  const std::string path = ::testing::TempDir() + "/lgg_ingest_file.txt";
  graph::write_snap_edge_list_file(path, g, "ingest file test");

  const LoadedGraph want = graph::read_snap_edge_list_file(path);
  IngestOptions opts;
  opts.threads = 4;
  const IngestResult got = load_snap_file(path, opts);
  expect_identical(got.loaded, want);
  EXPECT_GT(got.stats.bytes, 0u);
  EXPECT_EQ(got.stats.edge_lines, g.num_edges());
  EXPECT_THROW(load_snap_file("/nonexistent/graph.txt"), lgg::Error);
}

TEST(IngestCsr, MatchesFromEdgesIncludingErrors) {
  const std::vector<graph::Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {2, 0},
                                          {3, 3}, {1, 3}};
  const Graph want = Graph::from_edges(5, edges);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    const Graph got = build_csr_parallel(5, edges, &pool);
    EXPECT_EQ(graph::graph_digest(got), graph::graph_digest(want));
  }
  const Graph serial_path = build_csr_parallel(5, edges, nullptr);
  EXPECT_EQ(graph::graph_digest(serial_path), graph::graph_digest(want));

  // Out-of-range endpoints must throw the exact from_edges message.
  const std::vector<graph::Edge> bad = {{0, 1}, {9, 1}, {8, 0}};
  std::string want_message;
  try {
    Graph::from_edges(3, bad);
    FAIL() << "from_edges accepted an out-of-range edge";
  } catch (const lgg::Error& e) {
    want_message = e.what();
  }
  ThreadPool pool(4);
  try {
    build_csr_parallel(3, bad, &pool);
    FAIL() << "build_csr_parallel accepted an out-of-range edge";
  } catch (const lgg::Error& e) {
    EXPECT_EQ(std::string(e.what()), want_message);
  }
}

TEST(Orient, TriangleCountMatchesForward) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Graph g = graph::gnm(300, 2400, seed);
    const std::uint64_t want = core::count_triangles_forward(g);
    const OrientedGraph serial = orient_by_degree(g, nullptr);
    EXPECT_EQ(count_triangles_oriented(serial, nullptr), want);
    ThreadPool pool(4);
    const OrientedGraph parallel = orient_by_degree(g, &pool);
    ASSERT_EQ(parallel.offsets, serial.offsets);
    ASSERT_EQ(parallel.targets, serial.targets);
    EXPECT_EQ(count_triangles_oriented(parallel, &pool), want);
  }
}

TEST(Orient, OutDegreeIsBounded) {
  // Degree-ordered orientation bounds out-degrees by O(sqrt(2m)) even on
  // a star, where the natural orientation has a degree-n hub.
  const Graph star = graph::star(500);
  const OrientedGraph og = orient_by_degree(star, nullptr);
  EXPECT_EQ(og.num_arcs(), star.num_edges());
  // Every leaf has degree 1 < hub degree, so all arcs point at the hub.
  EXPECT_LE(og.max_out_degree, 1u);
  EXPECT_EQ(count_triangles_oriented(og, nullptr), 0u);
}

TEST(IngestDigest, DistinguishesLoadedGraphFields) {
  const std::string base = "# c\n1 2\n2 3\n";
  const auto digest_of = [](const std::string& text) {
    return graph::loaded_graph_digest(load_snap_buffer(text).loaded);
  };
  EXPECT_NE(digest_of(base), digest_of("# d\n1 2\n2 3\n"));  // comment text
  EXPECT_NE(digest_of(base), digest_of("# c\n5 2\n2 3\n"));  // original ids
  EXPECT_NE(digest_of(base), digest_of("# c\n# Nodes: 3\n1 2\n2 3\n"));
  EXPECT_EQ(digest_of(base), digest_of(base));
}

}  // namespace
}  // namespace lgg::ingest

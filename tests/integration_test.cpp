// Cross-module integration tests: the full paper pipeline end to end.
#include <gtest/gtest.h>

#include <sstream>

#include "lgg.hpp"

namespace lgg {
namespace {

using core::GpuLayout;
using core::GpuTriangleOptions;
using graph::Graph;

// Pipeline: generate -> SNAP round trip -> chunk -> schedule -> count on
// CPU and on every GPU layout -> all counts agree.
TEST(Integration, FullPipelineCountsAgree) {
  const Graph original = graph::barabasi_albert(90, 3, 77);

  // SNAP round trip.
  std::stringstream buffer;
  graph::write_snap_edge_list(buffer, original, "integration");
  const Graph g = graph::read_snap_edge_list(buffer).graph;
  ASSERT_EQ(g.num_edges(), original.num_edges());

  // Algorithm 1 chunking against the C1060 shared-memory budget.
  graph::ChunkingOptions copts;
  copts.shared_mem_bits = gpusim::tesla_c1060().shared_mem_bits();
  const auto chunks = graph::split_into_chunks(g, copts);
  EXPECT_FALSE(chunks.chunks.empty());

  // Section VI: schedule chunk jobs on the 30 SMs.
  std::vector<std::uint64_t> jobs;
  for (const auto& chunk : chunks.chunks) jobs.push_back(chunk.bits);
  const auto schedule =
      sched::lpt_schedule(jobs, gpusim::tesla_c1060().sm_count);
  EXPECT_GE(schedule.makespan, sched::makespan_lower_bound(
                                   jobs, gpusim::tesla_c1060().sm_count));

  // Counting: CPU reference vs all GPU layouts.
  const std::uint64_t want = core::count_triangles_forward(g);
  EXPECT_EQ(core::count_triangles_cpu_als(g).triangles, want);
  for (const GpuLayout layout :
       {GpuLayout::kNaive, GpuLayout::kCoalesced,
        GpuLayout::kCoalescedAntiCamping}) {
    GpuTriangleOptions opts;
    opts.layout = layout;
    opts.blocks = 8;
    opts.threads_per_block = 64;
    const auto result = core::count_triangles_gpu(g, opts);
    EXPECT_TRUE(result.exact);
    EXPECT_EQ(result.triangles, want) << core::gpu_layout_name(layout);
  }
}

// The paper's headline claims, at test scale, on the modelled clock.
TEST(Integration, ModelledGpuBeatsModelledCpuOnLargeEnoughGraphs) {
  const Graph g = graph::erdos_renyi(500, 0.1, 5);
  const double cpu_s = core::cpu_model_time_s(core::build_als_plan(g));

  GpuTriangleOptions opts;
  opts.layout = GpuLayout::kCoalescedAntiCamping;
  opts.max_simulated_tests = 200000;
  const auto gpu = core::count_triangles_gpu(g, opts);
  EXPECT_LT(gpu.total_time_s, cpu_s);
  EXPECT_GT(cpu_s / gpu.total_time_s, 2.0) << "expected a clear GPU win";
}

TEST(Integration, TransferOverheadDominatesTinyGraphs) {
  // Paper Fig. 10: for small graphs CPU and GPU are comparable because of
  // host->device transfer; the kernel itself is a small share.
  const Graph g = graph::erdos_renyi(24, 0.3, 2);
  GpuTriangleOptions opts;
  opts.blocks = 4;
  opts.threads_per_block = 32;
  const auto gpu = core::count_triangles_gpu(g, opts);
  const double fixed_overhead = gpu.transfer.time_s +
                                gpusim::calibration::kDispatchOverheadS +
                                gpusim::calibration::kDeviceInitOverheadS +
                                gpu.preprocessing_s;
  EXPECT_GT(fixed_overhead, 0.2 * gpu.total_time_s);
}

// Eq. 6 of the paper: total chunk time mu*tau_s + psi_g*tau_g — verify the
// scheduler + chunking machinery produces the quantities the equation
// needs and that they behave monotonically.
TEST(Integration, Eq6QuantitiesBehave) {
  const Graph g = graph::barabasi_albert(200, 2, 3);
  graph::ChunkingOptions copts;
  copts.shared_mem_bits = 3000;  // force a mixed shared/global split
  const auto result = graph::split_into_chunks(g, copts);
  std::size_t fits = 0, global = 0;
  for (const auto& chunk : result.chunks)
    (chunk.fits_shared ? fits : global)++;
  EXPECT_EQ(result.oversized_chunks, global);
  EXPECT_EQ(fits + global, result.chunks.size());
}

// Table II is computable from the device table alone.
TEST(Integration, TableTwoFromDeviceSpecs) {
  const auto& c1060 = gpusim::tesla_c1060();
  EXPECT_EQ(graph::BitMatrix::max_vertices_for(c1060.shared_mem_bits()), 362u);
  EXPECT_EQ(graph::SutMatrix::max_vertices_for(c1060.shared_mem_bits()), 512u);
  EXPECT_EQ(graph::BitMatrix::max_vertices_for(c1060.global_mem_bits()),
            185363u);
  EXPECT_EQ(graph::SutMatrix::max_vertices_for(c1060.global_mem_bits()),
            262144u);
}

// A graph exceeding device global memory must be rejected loudly (Eq. 1
// becoming operational).
TEST(Integration, DeviceCapacityEnforcedByGpuCounter) {
  // 300k vertices -> 300k rows x ceil(300k/32)*4 B ≈ 11 GB > 4 GiB C1060.
  // Building a real 300k graph is cheap as long as it has few edges.
  const Graph g = graph::path(300000);
  GpuTriangleOptions opts;
  opts.layout = GpuLayout::kNaive;
  EXPECT_THROW(core::count_triangles_gpu(g, opts), Error);
}

// Makespan scheduling quality carries to chunk workloads from real splits.
TEST(Integration, LptNearLowerBoundOnRealChunks) {
  const Graph g = graph::rmat(11, 4, 6);
  graph::ChunkingOptions copts;
  copts.shared_mem_bits = 5000;
  const auto chunks = graph::split_into_chunks(g, copts);
  std::vector<std::uint64_t> jobs;
  for (const auto& chunk : chunks.chunks) jobs.push_back(chunk.bits);
  if (jobs.empty()) GTEST_SKIP() << "graph produced no chunks";
  const auto lpt = sched::lpt_schedule(jobs, 30);
  const auto lb = sched::makespan_lower_bound(jobs, 30);
  EXPECT_LE(static_cast<double>(lpt.makespan),
            4.0 / 3.0 * static_cast<double>(lb) + 1.0);
}

}  // namespace
}  // namespace lgg

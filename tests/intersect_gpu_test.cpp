#include <gtest/gtest.h>

#include "core/intersect_gpu.hpp"
#include "core/triangle_cpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using graph::Graph;

GpuIntersectOptions small_launch() {
  GpuIntersectOptions opts;
  opts.blocks = 4;
  opts.threads_per_block = 64;
  return opts;
}

class IntersectCorrect : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntersectCorrect, MatchesOracleOnRandomGraphs) {
  const Graph g = graph::erdos_renyi(80, 0.12, GetParam());
  const GpuIntersectResult r = count_triangles_gpu_intersect(g, small_launch());
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.triangles, count_triangles_edge_iterator(g));
  EXPECT_EQ(r.simulated_edges, r.total_edges);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectCorrect,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Intersect, StructuredGraphs) {
  EXPECT_EQ(count_triangles_gpu_intersect(graph::complete(12), small_launch())
                .triangles,
            220u);
  EXPECT_EQ(count_triangles_gpu_intersect(graph::cycle(9), small_launch())
                .triangles,
            0u);
  EXPECT_EQ(count_triangles_gpu_intersect(Graph(0), small_launch()).triangles,
            0u);
  EXPECT_EQ(count_triangles_gpu_intersect(graph::star(30), small_launch())
                .triangles,
            0u);
}

TEST(Intersect, PowerLawGraph) {
  const Graph g = graph::barabasi_albert(300, 4, 7);
  const GpuIntersectResult r = count_triangles_gpu_intersect(g, small_launch());
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.triangles, count_triangles_forward(g));
}

TEST(Intersect, OrientedEdgesEqualEdgeCount) {
  const Graph g = graph::erdos_renyi(60, 0.2, 9);
  const GpuIntersectResult r = count_triangles_gpu_intersect(g, small_launch());
  EXPECT_EQ(r.total_edges, g.num_edges());
}

TEST(Intersect, FarLessWorkThanCandidateKernel) {
  // The whole point of the baseline: work ~ sum of oriented degrees, not
  // ~ C(level, 3).  On a sparse-but-wide graph the candidate kernel must
  // issue orders of magnitude more global traffic.
  const Graph g = graph::erdos_renyi(300, 0.03, 5);
  const GpuIntersectResult inter =
      count_triangles_gpu_intersect(g, small_launch());
  GpuTriangleOptions copts;
  copts.blocks = 4;
  copts.threads_per_block = 64;
  copts.max_simulated_tests = 500000;
  const GpuTriangleResult cand = count_triangles_gpu(g, copts);
  EXPECT_LT(inter.kernel.bytes * 10, cand.kernel.bytes);
  EXPECT_LT(inter.kernel.kernel_time_s, cand.kernel.kernel_time_s);
}

TEST(Intersect, SampledRunRescales) {
  const Graph g = graph::erdos_renyi(200, 0.08, 3);
  const GpuIntersectResult exact =
      count_triangles_gpu_intersect(g, small_launch());
  GpuIntersectOptions opts = small_launch();
  opts.max_simulated_edges = exact.total_edges / 4;
  const GpuIntersectResult sampled = count_triangles_gpu_intersect(g, opts);
  EXPECT_FALSE(sampled.exact);
  EXPECT_LT(sampled.simulated_edges, sampled.total_edges);
  EXPECT_NEAR(static_cast<double>(sampled.kernel.transactions),
              static_cast<double>(exact.kernel.transactions),
              0.35 * static_cast<double>(exact.kernel.transactions));
}

TEST(Intersect, Validation) {
  GpuIntersectOptions bad = small_launch();
  bad.threads_per_block = 20;
  EXPECT_THROW(count_triangles_gpu_intersect(graph::complete(4), bad),
               lgg::Error);
}

TEST(Intersect, DeviceBytesAreCsrFootprint) {
  const Graph g = graph::erdos_renyi(100, 0.1, 1);
  const GpuIntersectResult r = count_triangles_gpu_intersect(g, small_launch());
  // offsets: (n+1)*8; adjacency: oriented edge count * 4.
  EXPECT_EQ(r.device_bytes, (100 + 1) * 8 + g.num_edges() * 4);
}

}  // namespace
}  // namespace lgg::core

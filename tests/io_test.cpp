#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/error.hpp"

namespace lgg::graph {
namespace {

TEST(SnapIo, ParsesCommentsAndEdges) {
  std::istringstream in(
      "# Directed graph: example\n"
      "# Nodes: 4 Edges: 3\n"
      "10\t20\n"
      "20 30\n"
      "\n"
      "   # indented comment\n"
      "30\t10\n");
  const LoadedGraph loaded = read_snap_edge_list(in);
  EXPECT_EQ(loaded.graph.num_vertices(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 3u);
  // Original ids preserved in first-seen order.
  EXPECT_EQ(loaded.original_ids, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(SnapIo, MalformedLineThrows) {
  std::istringstream in("1 2\nnot numbers\n");
  EXPECT_THROW(read_snap_edge_list(in), lgg::Error);
}

TEST(SnapIo, MissingFileThrows) {
  EXPECT_THROW(read_snap_edge_list_file("/nonexistent/graph.txt"), lgg::Error);
}

TEST(SnapIo, SelfLoopsDropped) {
  std::istringstream in("1 1\n1 2\n");
  const LoadedGraph loaded = read_snap_edge_list(in);
  EXPECT_EQ(loaded.graph.num_edges(), 1u);
}

TEST(SnapIo, RoundTripPreservesStructure) {
  const Graph g = erdos_renyi(60, 0.1, 17);
  std::ostringstream out;
  write_snap_edge_list(out, g, "round trip test");
  std::istringstream in(out.str());
  const LoadedGraph loaded = read_snap_edge_list(in);
  // Vertex ids are written dense, so the reload matches exactly up to
  // isolated vertices (which edge lists cannot represent).
  std::size_t non_isolated = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (g.degree(v) > 0) ++non_isolated;
  EXPECT_EQ(loaded.graph.num_vertices(), non_isolated);
  EXPECT_EQ(loaded.graph.num_edges(), g.num_edges());
}

TEST(SnapIo, WriteIncludesHeaderCounts) {
  const Graph g = complete(4);
  std::ostringstream out;
  write_snap_edge_list(out, g);
  EXPECT_NE(out.str().find("# Nodes: 4 Edges: 6"), std::string::npos);
}

TEST(SnapIo, FileRoundTrip) {
  const Graph g = complete(5);
  const std::string path = ::testing::TempDir() + "/lgg_io_test_k5.txt";
  write_snap_edge_list_file(path, g, "K5");
  const LoadedGraph loaded = read_snap_edge_list_file(path);
  EXPECT_EQ(loaded.graph.num_vertices(), 5u);
  EXPECT_EQ(loaded.graph.num_edges(), 10u);
}

// Regression: the file overload used to drop its options argument and
// always parse with the defaults, so pad_to_declared_nodes silently did
// nothing for files (while working for streams).
TEST(SnapIo, FileOverloadHonoursReadOptions) {
  const std::string path = ::testing::TempDir() + "/lgg_io_test_pad.txt";
  {
    std::ofstream out(path);
    out << "# Nodes: 9 Edges: 2\n0 1\n1 2\n";
  }
  const LoadedGraph plain = read_snap_edge_list_file(path);
  EXPECT_EQ(plain.graph.num_vertices(), 3u);

  SnapReadOptions opts;
  opts.pad_to_declared_nodes = true;
  const LoadedGraph padded = read_snap_edge_list_file(path, opts);
  ASSERT_TRUE(padded.declared_nodes.has_value());
  EXPECT_EQ(*padded.declared_nodes, 9u);
  EXPECT_EQ(padded.graph.num_vertices(), 9u);
  EXPECT_EQ(padded.graph.num_edges(), 2u);
}

}  // namespace
}  // namespace lgg::graph

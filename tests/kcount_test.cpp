#include <gtest/gtest.h>

#include "combi/binomial.hpp"
#include "core/kcount.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using combi::binomial;
using graph::Graph;

// ---- k-cliques ----

TEST(KCliques, KnownValues) {
  // K_n has C(n, k) k-cliques.
  for (std::uint32_t k = 1; k <= 6; ++k)
    EXPECT_EQ(count_kcliques(graph::complete(6), k), binomial(6, k)) << k;
  // k=2 counts edges.
  const Graph g = graph::erdos_renyi(40, 0.2, 3);
  EXPECT_EQ(count_kcliques(g, 2), g.num_edges());
  // k=3 counts triangles.
  EXPECT_EQ(count_kcliques(g, 3), count_triangles_edge_iterator(g));
  // Triangle-free graphs have no 3-cliques.
  EXPECT_EQ(count_kcliques(graph::complete_bipartite(5, 5), 3), 0u);
  EXPECT_EQ(count_kcliques(graph::cycle(8), 3), 0u);
}

TEST(KCliques, ZeroKThrows) {
  EXPECT_THROW(count_kcliques(Graph(3), 0), lgg::Error);
}

class KCliqueAlsAgreement : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KCliqueAlsAgreement, PaperStyleMatchesOracle) {
  const std::uint32_t k = GetParam();
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const Graph g = graph::erdos_renyi(26, 0.35, seed);
    EXPECT_EQ(count_kcliques_als(g, k), count_kcliques(g, k))
        << "k=" << k << " seed=" << seed;
  }
  const Graph multi =
      graph::disjoint_union(graph::complete(6), graph::erdos_renyi(15, 0.4, 9));
  EXPECT_EQ(count_kcliques_als(multi, k), count_kcliques(multi, k));
}

INSTANTIATE_TEST_SUITE_P(K, KCliqueAlsAgreement, ::testing::Values(1, 2, 3, 4, 5));

// ---- independent sets ----

TEST(IndependentSets, KnownValues) {
  // Empty graph on n vertices: C(n, k) independent sets.
  EXPECT_EQ(count_independent_sets(Graph(8), 3), binomial(8, 3));
  // Complete graph: none beyond k=1.
  EXPECT_EQ(count_independent_sets(graph::complete(6), 2), 0u);
  EXPECT_EQ(count_independent_sets(graph::complete(6), 1), 6u);
  // K_{a,b}: independent k-sets live entirely in one side.
  EXPECT_EQ(count_independent_sets(graph::complete_bipartite(4, 5), 3),
            binomial(4, 3) + binomial(5, 3));
  // C5: independent pairs = C(5,2) - 5 edges = 5.
  EXPECT_EQ(count_independent_sets(graph::cycle(5), 2), 5u);
}

TEST(IndependentSets, ComplementDuality) {
  // Independent sets of G = cliques of the complement.
  const Graph g = graph::erdos_renyi(18, 0.5, 4);
  std::vector<graph::Edge> comp_edges;
  for (graph::Vertex u = 0; u < 18; ++u)
    for (graph::Vertex v = u + 1; v < 18; ++v)
      if (!g.has_edge(u, v)) comp_edges.emplace_back(u, v);
  const Graph complement = Graph::from_edges(18, comp_edges);
  for (std::uint32_t k = 2; k <= 4; ++k)
    EXPECT_EQ(count_independent_sets(g, k), count_kcliques(complement, k))
        << k;
}

// ---- connected subgraphs ----

TEST(ConnectedSubgraphs, KnownValues) {
  // Path P_n: connected k-subsets are exactly the n-k+1 subpaths.
  EXPECT_EQ(count_connected_subgraphs(graph::path(10), 4), 7u);
  // Cycle C_n (k < n): n arcs of length k.
  EXPECT_EQ(count_connected_subgraphs(graph::cycle(9), 3), 9u);
  // Complete graph: every k-subset is connected.
  EXPECT_EQ(count_connected_subgraphs(graph::complete(7), 4),
            binomial(7, 4));
  // Star: connected subsets must contain the centre.
  EXPECT_EQ(count_connected_subgraphs(graph::star(8), 3), binomial(7, 2));
  // k = 1: one per vertex.
  EXPECT_EQ(count_connected_subgraphs(graph::path(5), 1), 5u);
  // Disconnected pieces never mix.
  EXPECT_EQ(count_connected_subgraphs(
                graph::disjoint_union(graph::path(4), graph::path(4)), 2),
            6u);
}

class ConnSubgraphAgreement : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ConnSubgraphAgreement, PaperStyleMatchesEsu) {
  const std::uint32_t k = GetParam();
  for (const std::uint64_t seed : {3ull, 8ull}) {
    const Graph g = graph::erdos_renyi(18, 0.2, seed);
    EXPECT_EQ(count_connected_subgraphs_als(g, k),
              count_connected_subgraphs(g, k))
        << "k=" << k << " seed=" << seed;
  }
  const Graph grid = graph::grid2d(3, 4);
  EXPECT_EQ(count_connected_subgraphs_als(grid, k),
            count_connected_subgraphs(grid, k));
}

INSTANTIATE_TEST_SUITE_P(K, ConnSubgraphAgreement,
                         ::testing::Values(1, 2, 3, 4));

TEST(ConnectedSubgraphs, ZeroKThrows) {
  EXPECT_THROW(count_connected_subgraphs(Graph(2), 0), lgg::Error);
  EXPECT_THROW(count_connected_subgraphs_als(Graph(2), 0), lgg::Error);
  EXPECT_THROW(count_kcliques_als(Graph(2), 0), lgg::Error);
  EXPECT_THROW(count_independent_sets(Graph(2), 0), lgg::Error);
}

}  // namespace
}  // namespace lgg::core

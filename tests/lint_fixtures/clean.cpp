// Clean fixture: sanctioned constructs only.  Banned names appear solely
// in comments and string literals — rand(), steady_clock::now(),
// this_thread::get_id() — where the token scanner must never look.
#include <cstdint>
#include <map>
#include <random>
#include <string>

std::uint64_t fixture_draw(std::uint64_t seed) {
  std::mt19937_64 engine(seed);  // seeded engine: allowed
  std::map<std::string, std::uint64_t> counts;  // ordered: allowed
  counts["rand() and random_device stay banned"] = engine();
  std::uint64_t sum = 0;
  for (const auto& [key, value] : counts) sum += value + key.size();
  return sum;
}

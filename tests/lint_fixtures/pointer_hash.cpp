// Seeded det-pointer-hash fixture: lines pinned by lint_test.cpp.
#include <cstdint>
#include <functional>

std::size_t fixture_addr_hash(const int* p) {
  const std::hash<const int*> hasher;  // line 6
  const auto raw = reinterpret_cast<std::uintptr_t>(p);  // line 7
  return hasher(p) ^ static_cast<std::size_t>(raw);
}

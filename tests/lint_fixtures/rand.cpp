// Seeded det-rand fixture: lines pinned by lint_test.cpp.
#include <cstdlib>
#include <random>

int fixture_noise() {
  std::random_device entropy;  // line 6
  (void)entropy;
  return rand();  // line 8
}

// Seeded det-thread-id fixture: lines pinned by lint_test.cpp.
#include <thread>

bool fixture_on_thread(std::thread::id expected) {  // line 4
  return std::this_thread::get_id() == expected;  // line 5
}

// Seeded det-unordered-iter fixture: lines pinned by lint_test.cpp.
#include <unordered_map>
#include <vector>

std::vector<int> fixture_dump(const std::unordered_map<int, int>& counts) {
  std::vector<int> out;
  for (const auto& [key, value] : counts) {  // line 7
    out.push_back(key + value);
  }
  auto it = counts.begin();  // line 10
  (void)it;
  return out;
}

// Seeded det-wall-clock fixture: one violation per flavour, lines pinned
// by lint_test.cpp — renumbering this file breaks the exact-line asserts.
#include <chrono>
#include <ctime>

double fixture_stamp() {
  const auto tick = std::chrono::steady_clock::now();  // line 7
  (void)tick;
  return static_cast<double>(time(nullptr));  // line 9
}

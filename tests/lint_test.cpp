// Tests for the static determinism & plan-safety analyzer (DESIGN.md §14):
// exact rule/file/line asserts over the seeded fixture corpus, allowlist
// semantics (suffix match, used-tracking, stale detection), footprint
// proofs for all five kernel spec builders with targeted refutations, and
// the schedule-repair verification clauses against tampered repairs.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bfs_gpu.hpp"
#include "core/hybrid.hpp"
#include "core/intersect_gpu.hpp"
#include "core/subgraph_gpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "lint/plan_verify.hpp"
#include "lint/source_lint.hpp"
#include "sancheck/footprint.hpp"

namespace lint = lgg::lint;
namespace core = lgg::core;
namespace graph = lgg::graph;
namespace sancheck = lgg::sancheck;
namespace sched = lgg::sched;

namespace {

std::string fixture_path(const std::string& name) {
  return std::string(LGG_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<lint::Violation> lint_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint::lint_source(path, buf.str());
}

void expect_violation(const std::vector<lint::Violation>& vs, std::size_t i,
                      const std::string& rule, std::uint32_t line) {
  ASSERT_LT(i, vs.size());
  EXPECT_EQ(vs[i].rule, rule);
  EXPECT_EQ(vs[i].line, line);
}

}  // namespace

// ---- rule catalog ----------------------------------------------------

TEST(LintRules, CatalogIsStable) {
  const auto& rules = lint::source_rules();
  ASSERT_EQ(rules.size(), 7u);
  EXPECT_EQ(rules[0].id, "det-wall-clock");
  EXPECT_EQ(rules[1].id, "det-rand");
  EXPECT_EQ(rules[2].id, "det-thread-id");
  EXPECT_EQ(rules[3].id, "det-pointer-hash");
  EXPECT_EQ(rules[4].id, "det-unordered-iter");
  EXPECT_EQ(rules[5].id, "lint-stale-allow");
  EXPECT_EQ(rules[6].id, "lint-io");
  for (const lint::Rule& r : rules) EXPECT_FALSE(r.summary.empty()) << r.id;
}

// ---- one fixture per rule, exact rule/file/line ----------------------

TEST(LintFixtures, WallClock) {
  const auto vs = lint_fixture("wall_clock.cpp");
  ASSERT_EQ(vs.size(), 2u);
  expect_violation(vs, 0, "det-wall-clock", 7);  // steady_clock::now
  expect_violation(vs, 1, "det-wall-clock", 9);  // time(nullptr)
  EXPECT_EQ(vs[0].file, fixture_path("wall_clock.cpp"));
}

TEST(LintFixtures, Rand) {
  const auto vs = lint_fixture("rand.cpp");
  ASSERT_EQ(vs.size(), 2u);
  expect_violation(vs, 0, "det-rand", 6);  // random_device
  expect_violation(vs, 1, "det-rand", 8);  // rand()
}

TEST(LintFixtures, ThreadId) {
  const auto vs = lint_fixture("thread_id.cpp");
  ASSERT_EQ(vs.size(), 2u);
  expect_violation(vs, 0, "det-thread-id", 4);  // thread::id
  expect_violation(vs, 1, "det-thread-id", 5);  // this_thread::get_id
}

TEST(LintFixtures, PointerHash) {
  const auto vs = lint_fixture("pointer_hash.cpp");
  ASSERT_EQ(vs.size(), 2u);
  expect_violation(vs, 0, "det-pointer-hash", 6);  // hash<const int*>
  expect_violation(vs, 1, "det-pointer-hash", 7);  // cast to uintptr_t
}

TEST(LintFixtures, UnorderedIter) {
  const auto vs = lint_fixture("unordered_iter.cpp");
  ASSERT_EQ(vs.size(), 2u);
  expect_violation(vs, 0, "det-unordered-iter", 7);   // range-for
  expect_violation(vs, 1, "det-unordered-iter", 10);  // .begin()
}

TEST(LintFixtures, CleanFileHasNoViolations) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

// ---- scanner details -------------------------------------------------

TEST(LintScanner, LiteralsAndCommentsAreInvisible) {
  const std::string src =
      "// rand() in a comment\n"
      "/* std::steady_clock::now() in a block */\n"
      "const char* a = \"random_device\";\n"
      "const char* b = R\"(this_thread::get_id())\";\n"
      "const char c = 'r';\n";
  EXPECT_TRUE(lint::lint_source("mem.cpp", src).empty());
}

TEST(LintScanner, MemberCallsAndDeclarationsDoNotFire) {
  const std::string src =
      "double time(double x);\n"      // declaration, not a call
      "double f(S s) { return s.time() + s2->clock(); }\n";  // members
  EXPECT_TRUE(lint::lint_source("mem.cpp", src).empty());
}

TEST(LintScanner, QualifiedAndReturnedCallsFire) {
  const std::string src = "long f() { return std::time(nullptr); }\n";
  const auto vs = lint::lint_source("mem.cpp", src);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "det-wall-clock");
}

TEST(LintScanner, ValueTypeHashDoesNotFire) {
  const std::string src =
      "std::hash<std::string> h;\n"
      "std::unordered_map<int, int> lookup_only;\n"
      "int g(int k) { return lookup_only.count(k); }\n";
  EXPECT_TRUE(lint::lint_source("mem.cpp", src).empty());
}

// ---- allowlist -------------------------------------------------------

TEST(LintAllowlist, SuffixMatchOnPathBoundary) {
  auto allow = lint::Allowlist::parse(
      "det-unordered-iter core/social.cpp sorted after\n", "allow.txt");
  ASSERT_TRUE(allow.parse_errors().empty());
  EXPECT_TRUE(allow.allows("det-unordered-iter", "src/core/social.cpp"));
  EXPECT_FALSE(allow.allows("det-unordered-iter", "src/core/asocial.cpp"));
  EXPECT_FALSE(allow.allows("det-wall-clock", "src/core/social.cpp"));
}

TEST(LintAllowlist, StaleEntriesSurface) {
  auto allow = lint::Allowlist::parse(
      "# comment\n"
      "det-rand src/a.cpp used below\n"
      "det-rand src/never.cpp never matched\n",
      "allow.txt");
  ASSERT_EQ(allow.entries().size(), 2u);
  EXPECT_TRUE(allow.allows("det-rand", "src/a.cpp"));
  const auto stale = allow.stale();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "lint-stale-allow");
  EXPECT_EQ(stale[0].file, "allow.txt");
  EXPECT_EQ(stale[0].line, 3u);
}

TEST(LintAllowlist, MalformedAndUnknownRuleLinesAreErrors) {
  auto allow = lint::Allowlist::parse(
      "det-rand missing-justification\n"
      "not-a-rule src/a.cpp why\n",
      "allow.txt");
  EXPECT_TRUE(allow.entries().empty());
  EXPECT_EQ(allow.parse_errors().size(), 2u);
}

TEST(LintAllowlist, ShippedAllowlistKeepsTreeClean) {
  std::ifstream in(std::string(LGG_REPO_DIR) + "/ci/lint_allow.txt",
                   std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buf;
  buf << in.rdbuf();
  auto allow = lint::Allowlist::parse(buf.str(), "ci/lint_allow.txt");
  EXPECT_TRUE(allow.parse_errors().empty());
  const auto files = lint::collect_sources(
      {std::string(LGG_REPO_DIR) + "/src", std::string(LGG_REPO_DIR) + "/tools",
       std::string(LGG_REPO_DIR) + "/bench"});
  EXPECT_GT(files.size(), 100u);
  const auto found = lint::lint_files(files, &allow);
  for (const auto& v : found)
    ADD_FAILURE() << v.file << ':' << v.line << " [" << v.rule << "] "
                  << v.message;
  for (const auto& v : allow.stale())
    ADD_FAILURE() << "stale allowlist entry at line " << v.line;
}

// ---- footprint proofs for the five kernels ---------------------------

TEST(PlanFootprint, TriangleAllLayoutsProveClean) {
  const graph::Graph g = graph::layered_random(160, 20, 0.3, 0.1, 5);
  for (const auto layout :
       {core::GpuLayout::kNaive, core::GpuLayout::kCoalesced,
        core::GpuLayout::kCoalescedAntiCamping}) {
    core::GpuTriangleOptions opts;
    opts.layout = layout;
    const auto spec = core::als_footprint_spec(g, opts);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_TRUE(sancheck::lint_footprint(spec).clean()) << spec.name;
  }
}

TEST(PlanFootprint, IntersectProvesCleanAndRefutesShrunkenBlock) {
  const graph::Graph g = graph::erdos_renyi(80, 0.15, 3);
  auto spec = core::intersect_footprint_spec(g);
  EXPECT_EQ(spec.name, "gpu/intersect");
  EXPECT_TRUE(sancheck::lint_footprint(spec).clean());
  ASSERT_FALSE(spec.blocks.empty());
  spec.blocks[1].bytes /= 2;  // neighbour array too small
  const auto report = sancheck::lint_footprint(spec);
  EXPECT_FALSE(report.contained);
}

TEST(PlanFootprint, BfsProvesCleanAndRefutesMissingWorkers) {
  const graph::Graph g = graph::grid2d(12, 12);
  auto spec = core::bfs_footprint_spec(g);
  EXPECT_EQ(spec.name, "gpu/bfs");
  EXPECT_EQ(spec.division, sancheck::WorkDivision::kThreadPerItem);
  EXPECT_TRUE(sancheck::lint_footprint(spec).clean());
  spec.workers = spec.total_tests - 1;  // one vertex uncovered
  const auto report = sancheck::lint_footprint(spec);
  EXPECT_FALSE(report.plan_consistent);
}

TEST(PlanFootprint, SubgraphProvesCleanAndRefutesBadIndexBound) {
  const graph::Graph g = graph::layered_random(120, 16, 0.3, 0.1, 9);
  for (const auto& [k, window] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{{3, 2}, {4, 4}}) {
    auto spec = core::subgraph_footprint_spec(g, k, window);
    EXPECT_EQ(spec.name, "gpu/subgraph");
    EXPECT_TRUE(sancheck::lint_footprint(spec).clean())
        << "k=" << k << " window=" << window;
  }
  auto spec = core::subgraph_footprint_spec(g, 3, 2);
  ASSERT_FALSE(spec.blocks.empty());
  spec.blocks[0].bytes /= 4;  // matrix block cannot hold the last row
  EXPECT_FALSE(sancheck::lint_footprint(spec).contained);
}

TEST(PlanFootprint, HybridChunksProveCleanAndRefuteTampering) {
  const graph::Graph g = graph::layered_random(220, 18, 0.3, 0.12, 13);
  const core::HybridFootprint fp = core::hybrid_footprint_spec(g);
  ASSERT_FALSE(fp.chunk_specs.empty());
  EXPECT_GT(fp.sm_count, 0u);
  EXPECT_GE(fp.chunk_tests.size(), fp.chunk_specs.size());
  for (const auto& spec : fp.chunk_specs) {
    EXPECT_EQ(spec.division, sancheck::WorkDivision::kCyclic);
    EXPECT_TRUE(sancheck::lint_footprint(spec).clean()) << spec.name;
  }
  // Tamper: claim one more test than the chunk's jobs cover.
  auto bad = fp.chunk_specs.front();
  bad.total_tests += 1;
  EXPECT_FALSE(sancheck::lint_footprint(bad).plan_consistent);
}

TEST(PlanFootprint, HybridSharedChunksBoundTheSutm) {
  // A clique chunk small enough to be shared-resident: its spec must carry
  // the s-utm LinearAccess against the shared-memory block.
  const graph::Graph g = graph::complete(24);
  const core::HybridFootprint fp = core::hybrid_footprint_spec(g);
  ASSERT_FALSE(fp.chunk_specs.empty());
  bool saw_shared = false;
  for (const auto& spec : fp.chunk_specs) {
    if (spec.name.find("/shared") == std::string::npos) continue;
    saw_shared = true;
    ASSERT_FALSE(spec.accesses.empty());
    EXPECT_EQ(spec.accesses[0].what, "s-utm words");
    for (const auto& job : spec.jobs)
      EXPECT_EQ(job.block, sancheck::kNoBlock);
  }
  EXPECT_TRUE(saw_shared);
}

// ---- schedule-repair verification ------------------------------------

namespace {
const std::vector<std::uint64_t> kJobs = {9, 7, 7, 5, 4, 3, 2, 1, 0};
}

TEST(PlanRepair, GenuineRepairPassesAllClauses) {
  const auto before = sched::lpt_schedule(kJobs, 4);
  const std::vector<std::uint32_t> lost = {1};
  const auto after = sched::reassign_after_loss(kJobs, before, lost);
  EXPECT_TRUE(lint::check_repair(kJobs, before, lost, after).empty());
}

TEST(PlanRepair, DetectsJobLeftOnLostMachine) {
  const auto before = sched::lpt_schedule(kJobs, 4);
  const std::vector<std::uint32_t> lost = {2};
  auto after = sched::reassign_after_loss(kJobs, before, lost);
  // Find a job and strand it back on the dead machine.
  after.machine_of[0] = 2;
  after = sched::recompute(kJobs, after.machine_of, 4);
  const auto findings = lint::check_repair(kJobs, before, lost, after);
  ASSERT_FALSE(findings.empty());
  bool saw = false;
  for (const auto& f : findings)
    saw = saw || f.find("lost machine") != std::string::npos;
  EXPECT_TRUE(saw);
}

TEST(PlanRepair, DetectsSurvivorJobMoved) {
  const auto before = sched::lpt_schedule(kJobs, 4);
  const std::vector<std::uint32_t> lost = {0};
  auto after = sched::reassign_after_loss(kJobs, before, lost);
  // Move a job that was on a surviving machine somewhere else.
  for (std::size_t j = 0; j < kJobs.size(); ++j) {
    if (before.machine_of[j] == 1) {
      after.machine_of[j] = 2;
      break;
    }
  }
  after = sched::recompute(kJobs, after.machine_of, 4);
  const auto findings = lint::check_repair(kJobs, before, lost, after);
  bool saw = false;
  for (const auto& f : findings)
    saw = saw || f.find("moved from surviving") != std::string::npos;
  EXPECT_TRUE(saw);
}

TEST(PlanRepair, DetectsStaleLoads) {
  const auto before = sched::lpt_schedule(kJobs, 4);
  const std::vector<std::uint32_t> lost = {3};
  auto after = sched::reassign_after_loss(kJobs, before, lost);
  after.load[3] += 5;  // stale total on the dead machine
  const auto findings = lint::check_repair(kJobs, before, lost, after);
  bool recompute_hit = false;
  bool drain_hit = false;
  for (const auto& f : findings) {
    recompute_hit =
        recompute_hit || f.find("does not recompute") != std::string::npos;
    drain_hit = drain_hit || f.find("still carries load") != std::string::npos;
  }
  EXPECT_TRUE(recompute_hit);
  EXPECT_TRUE(drain_hit);
}

TEST(PlanRepair, ExhaustiveVerificationUpToTwoLosses) {
  EXPECT_TRUE(lint::verify_reassignment(kJobs, 4, 1).empty());
  EXPECT_TRUE(lint::verify_reassignment(kJobs, 4, 2).empty());
  // loss_k larger than machines - 1 clamps: one survivor must remain.
  EXPECT_TRUE(lint::verify_reassignment(kJobs, 2, 5).empty());
  // Degenerate inputs stay provable.
  EXPECT_TRUE(lint::verify_reassignment({}, 4, 2).empty());
  EXPECT_TRUE(lint::verify_reassignment({0, 0, 0}, 3, 2).empty());
}

// ---- whole-pipeline verification -------------------------------------

TEST(PlanPipeline, RepresentativeGraphProvesClean) {
  const graph::Graph g = graph::layered_random(200, 20, 0.25, 0.1, 21);
  const lint::PlanReport report = lint::verify_pipeline(g, 2);
  EXPECT_TRUE(report.clean()) << report;
  // All five kernels must be represented.
  bool tri = false, inter = false, bfs = false, sub = false, hyb = false,
       repair = false;
  for (const auto& check : report.checks) {
    tri = tri || check.name.find("gpu/triangle/") == 0;
    inter = inter || check.name == "gpu/intersect";
    bfs = bfs || check.name == "gpu/bfs";
    sub = sub || check.name.find("gpu/subgraph") == 0;
    hyb = hyb || check.name.find("hybrid/chunk") == 0;
    repair = repair || check.name == "sched/repair";
  }
  EXPECT_TRUE(tri && inter && bfs && sub && hyb && repair);
}

TEST(PlanPipeline, DefaultSuiteProvesClean) {
  const lint::PlanReport report = lint::verify_default_pipelines(1);
  EXPECT_TRUE(report.clean()) << report;
  EXPECT_GT(report.checks.size(), 30u);
}

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sched/makespan.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace lgg::sched {
namespace {

void expect_valid(const Assignment& a, const std::vector<std::uint64_t>& jobs,
                  std::uint32_t machines) {
  ASSERT_EQ(a.machine_of.size(), jobs.size());
  const Assignment re = recompute(jobs, a.machine_of, machines);
  EXPECT_EQ(re.load, a.load);
  EXPECT_EQ(re.makespan, a.makespan);
  EXPECT_GE(a.makespan, makespan_lower_bound(jobs, machines));
}

TEST(ListSchedule, AssignsToLeastLoaded) {
  const std::vector<std::uint64_t> jobs{5, 5, 5, 5};
  const Assignment a = list_schedule(jobs, 2);
  expect_valid(a, jobs, 2);
  EXPECT_EQ(a.makespan, 10u);
}

TEST(ListSchedule, ClassicAdversarialOrder) {
  // Small jobs first then one big: list scheduling suffers, LPT does not.
  const std::vector<std::uint64_t> jobs{1, 1, 1, 1, 1, 1, 6};
  const Assignment list = list_schedule(jobs, 3);
  const Assignment lpt = lpt_schedule(jobs, 3);
  expect_valid(list, jobs, 3);
  expect_valid(lpt, jobs, 3);
  EXPECT_EQ(lpt.makespan, 6u);
  EXPECT_GT(list.makespan, lpt.makespan);
}

TEST(LptSchedule, OptimalOnPaperFigure1Example) {
  // Fig. 1: 7 chunks on 4 machines (sizes chosen to match the diagram's
  // proportions): the optimum balances to the lower bound.
  const std::vector<std::uint64_t> jobs{8, 7, 6, 5, 4, 3, 2};
  const Assignment lpt = lpt_schedule(jobs, 4);
  expect_valid(lpt, jobs, 4);
  const Assignment exact = exact_schedule(jobs, 4);
  expect_valid(exact, jobs, 4);
  EXPECT_EQ(exact.makespan, 9u);  // ceil(35/4) = 9 is achievable
  EXPECT_LE(lpt.makespan, 10u);
}

TEST(LptSchedule, WithinGrahamBound) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint32_t m = 2 + static_cast<std::uint32_t>(rng.uniform(5));
    std::vector<std::uint64_t> jobs(5 + rng.uniform(12));
    for (auto& j : jobs) j = 1 + rng.uniform(50);
    const Assignment lpt = lpt_schedule(jobs, m);
    expect_valid(lpt, jobs, m);
    const Assignment exact = exact_schedule(jobs, m);
    expect_valid(exact, jobs, m);
    // LPT is a (4/3 - 1/(3m))-approximation.
    EXPECT_LE(3.0 * static_cast<double>(lpt.makespan) * m,
              static_cast<double>(exact.makespan) * (4.0 * m - 1.0) + 1e-9)
        << "trial " << trial;
    EXPECT_LE(exact.makespan, lpt.makespan);
  }
}

TEST(Multifit, NeverWorseThanItsBoundAndValid) {
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t m = 2 + static_cast<std::uint32_t>(rng.uniform(4));
    std::vector<std::uint64_t> jobs(6 + rng.uniform(10));
    for (auto& j : jobs) j = 1 + rng.uniform(40);
    const Assignment mf = multifit_schedule(jobs, m);
    expect_valid(mf, jobs, m);
    const Assignment exact = exact_schedule(jobs, m);
    // MULTIFIT is a 13/11-approximation.
    EXPECT_LE(11.0 * static_cast<double>(mf.makespan),
              13.0 * static_cast<double>(exact.makespan) + 1e-9);
  }
}

TEST(ExactSchedule, KnownOptimum) {
  // {3,3,2,2,2} on 2 machines: optimum 6 (3+3 / 2+2+2).
  const std::vector<std::uint64_t> jobs{3, 3, 2, 2, 2};
  const Assignment a = exact_schedule(jobs, 2);
  expect_valid(a, jobs, 2);
  EXPECT_EQ(a.makespan, 6u);
}

TEST(ExactSchedule, BeatsLptWhereLptIsSuboptimal) {
  // Classic LPT-suboptimal instance: {5,5,4,4,3,3,3} on 3 machines.
  // LPT gives 11; optimum is 9 (5+4 / 5+4 / 3+3+3).
  const std::vector<std::uint64_t> jobs{5, 5, 4, 4, 3, 3, 3};
  EXPECT_EQ(lpt_schedule(jobs, 3).makespan, 11u);
  EXPECT_EQ(exact_schedule(jobs, 3).makespan, 9u);
}

TEST(ExactSchedule, SizeGuardThrows) {
  const std::vector<std::uint64_t> jobs(30, 1);
  EXPECT_THROW(exact_schedule(jobs, 3), lgg::Error);
}

TEST(ExactSchedule, EmptyAndSingle) {
  const Assignment empty = exact_schedule({}, 4);
  EXPECT_EQ(empty.makespan, 0u);
  const std::vector<std::uint64_t> one{7};
  const Assignment single = exact_schedule(one, 4);
  EXPECT_EQ(single.makespan, 7u);
}

TEST(LowerBound, MaxOfAvgAndMaxJob) {
  EXPECT_EQ(makespan_lower_bound({10, 1, 1}, 3), 10u);
  EXPECT_EQ(makespan_lower_bound({4, 4, 4, 4}, 2), 8u);
  EXPECT_EQ(makespan_lower_bound({}, 3), 0u);
  EXPECT_THROW(makespan_lower_bound({1}, 0), lgg::Error);
}

TEST(Schedulers, SingleMachineSerializesEverything) {
  const std::vector<std::uint64_t> jobs{3, 1, 4, 1, 5};
  const std::uint64_t sum =
      std::accumulate(jobs.begin(), jobs.end(), std::uint64_t{0});
  EXPECT_EQ(list_schedule(jobs, 1).makespan, sum);
  EXPECT_EQ(lpt_schedule(jobs, 1).makespan, sum);
  EXPECT_EQ(multifit_schedule(jobs, 1).makespan, sum);
  EXPECT_EQ(exact_schedule(jobs, 1).makespan, sum);
}

TEST(Schedulers, MoreMachinesThanJobs) {
  const std::vector<std::uint64_t> jobs{9, 2};
  EXPECT_EQ(lpt_schedule(jobs, 30).makespan, 9u);
  EXPECT_EQ(exact_schedule(jobs, 30).makespan, 9u);
}

TEST(Recompute, RejectsBadMachineIds) {
  EXPECT_THROW(recompute({1, 2}, {0, 5}, 2), lgg::Error);
  EXPECT_THROW(recompute({1, 2}, {0}, 2), lgg::Error);
}

// --- edge cases the resilient runner leans on ---------------------------

TEST(Schedulers, EmptyScheduleIsValid) {
  const auto check = [](const Assignment& a) {
    EXPECT_TRUE(a.machine_of.empty());
    EXPECT_EQ(a.load.size(), 5u);
    EXPECT_EQ(a.makespan, 0u);
  };
  check(list_schedule({}, 5));
  check(lpt_schedule({}, 5));
  check(multifit_schedule({}, 5));
  check(exact_schedule({}, 5));
  // And repairing an empty schedule after a loss is still empty.
  const Assignment after = reassign_after_loss({}, lpt_schedule({}, 5), {2});
  EXPECT_TRUE(after.machine_of.empty());
  EXPECT_EQ(after.makespan, 0u);
}

TEST(Schedulers, SingleOversizedChunkDominates) {
  // One chunk far larger than everything else: the makespan equals that
  // chunk and no heuristic can do better.
  const std::vector<std::uint64_t> jobs{1u << 30, 3, 1, 4, 1, 5};
  const auto check = [&](const Assignment& a) {
    expect_valid(a, jobs, 4);
    EXPECT_EQ(a.makespan, std::uint64_t{1} << 30);
  };
  check(list_schedule(jobs, 4));
  check(lpt_schedule(jobs, 4));
  check(multifit_schedule(jobs, 4));
  EXPECT_EQ(lpt_schedule({1u << 30}, 1).makespan, std::uint64_t{1} << 30);
}

TEST(ReassignAfterLoss, SurvivorsKeepJobsAndBalanceHolds) {
  Xoshiro256 rng(99);
  std::vector<std::uint64_t> jobs(60);
  for (auto& j : jobs) j = 5 + rng.uniform(200);
  const std::uint32_t machines = 8;
  const Assignment before = lpt_schedule(jobs, machines);
  const std::vector<std::uint32_t> lost{1, 4, 6};
  const Assignment after = reassign_after_loss(jobs, before, lost);
  expect_valid(after, jobs, machines);

  for (const auto m : lost) EXPECT_EQ(after.load[m], 0u);
  const auto is_lost = [&lost](std::uint32_t m) {
    return std::find(lost.begin(), lost.end(), m) != lost.end();
  };
  std::uint64_t max_job = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    max_job = std::max(max_job, jobs[j]);
    if (!is_lost(before.machine_of[j]))  // survivors keep their jobs
      EXPECT_EQ(after.machine_of[j], before.machine_of[j]);
    else  // displaced jobs land on survivors only
      EXPECT_FALSE(is_lost(after.machine_of[j]));
  }
  // Documented repair bound: max(original makespan, survivor LB + the
  // largest displaced job) — here relaxed to the largest job overall.
  const std::uint64_t survivors = machines - 3;
  const std::uint64_t bound = std::max(
      before.makespan,
      makespan_lower_bound(jobs, static_cast<std::uint32_t>(survivors)) +
          max_job);
  EXPECT_LE(after.makespan, bound);
}

TEST(ReassignAfterLoss, NoLossIsIdentity) {
  const std::vector<std::uint64_t> jobs{7, 3, 9, 1};
  const Assignment before = lpt_schedule(jobs, 3);
  const Assignment after = reassign_after_loss(jobs, before, {});
  EXPECT_EQ(after.machine_of, before.machine_of);
  EXPECT_EQ(after.load, before.load);
  EXPECT_EQ(after.makespan, before.makespan);
}

TEST(ReassignAfterLoss, AllJobsDisplacedOntoOneSurvivor) {
  const std::vector<std::uint64_t> jobs{5, 5, 5, 5};
  const Assignment before = lpt_schedule(jobs, 2);
  const Assignment after = reassign_after_loss(jobs, before, {0});
  expect_valid(after, jobs, 2);
  EXPECT_EQ(after.load[0], 0u);
  EXPECT_EQ(after.load[1], 20u);
  EXPECT_EQ(after.makespan, 20u);
}

TEST(ReassignAfterLoss, RejectsBadInput) {
  const std::vector<std::uint64_t> jobs{1, 2, 3};
  const Assignment a = lpt_schedule(jobs, 2);
  EXPECT_THROW(reassign_after_loss(jobs, a, {0, 1}), lgg::Error);  // nobody left
  EXPECT_THROW(reassign_after_loss(jobs, a, {7}), lgg::Error);     // bad index
  EXPECT_THROW(reassign_after_loss({1, 2}, a, {0}), lgg::Error);   // size skew
}

// Paper context: chunk sizes on 30 SMs (the C1060) — the scheduler must
// track the lower bound closely for realistic chunk distributions.
TEST(Schedulers, ThirtyStreamingMultiprocessors) {
  Xoshiro256 rng(30);
  std::vector<std::uint64_t> chunks(100);
  for (auto& c : chunks) c = 10 + rng.uniform(1000);
  const Assignment lpt = lpt_schedule(chunks, 30);
  expect_valid(lpt, chunks, 30);
  const std::uint64_t lb = makespan_lower_bound(chunks, 30);
  EXPECT_LE(static_cast<double>(lpt.makespan), 1.34 * static_cast<double>(lb));
}

}  // namespace
}  // namespace lgg::sched

#include <gtest/gtest.h>

#include "gpusim/memory.hpp"
#include "gpusim/partition.hpp"
#include "util/error.hpp"

namespace lgg::gpusim {
namespace {

TEST(DeviceMemory, BumpAllocationAligned) {
  DeviceMemory mem(tesla_c1060());
  const Buffer a = mem.alloc(100);
  const Buffer b = mem.alloc(100);
  EXPECT_EQ(a.base % 256, 0u);
  EXPECT_EQ(b.base % 256, 0u);
  EXPECT_GE(b.base, a.base + a.bytes);
  EXPECT_EQ(mem.used(), b.base + b.bytes);
}

TEST(DeviceMemory, CustomAlignment) {
  DeviceMemory mem(tesla_c1060());
  mem.alloc(1);
  const Buffer b = mem.alloc(8, 4096);
  EXPECT_EQ(b.base % 4096, 0u);
  EXPECT_THROW(mem.alloc(8, 3), lgg::Error);  // not a power of two
}

TEST(DeviceMemory, CapacityEnforced) {
  DeviceMemory mem(tesla_c1060());
  mem.alloc(3ull * 1024 * 1024 * 1024);
  EXPECT_THROW(mem.alloc(2ull * 1024 * 1024 * 1024), lgg::Error);
  mem.reset();
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_NO_THROW(mem.alloc(4ull * 1024 * 1024 * 1024));
}

TEST(DeviceMemory, AllocInPartitionPinsBase) {
  DeviceMemory mem(tesla_c1060());  // 8 partitions x 256 B
  const PartitionModel model(tesla_c1060());
  for (std::uint32_t p = 0; p < 8; ++p) {
    const Buffer b = mem.alloc_in_partition(100, p);
    EXPECT_EQ(model.partition_of(b.base), p) << "partition " << p;
  }
  EXPECT_THROW(mem.alloc_in_partition(10, 8), lgg::Error);
}

TEST(DeviceMemory, AllocInPartitionAdvancesCursor) {
  DeviceMemory mem(tesla_c1060());
  const Buffer a = mem.alloc_in_partition(10, 3);
  const Buffer b = mem.alloc_in_partition(10, 3);
  EXPECT_GT(b.base, a.base);
  EXPECT_EQ((b.base / 256) % 8, 3u);
}

TEST(Buffer, AddrBoundsChecked) {
  DeviceMemory mem(tesla_c1060());
  const Buffer b = mem.alloc(64);
  EXPECT_EQ(b.addr(0), b.base);
  EXPECT_EQ(b.addr(63), b.base + 63);
  EXPECT_THROW((void)b.addr(64), lgg::Error);
}

TEST(Transfer, TimeModel) {
  const DeviceSpec& d = tesla_c1060();
  const double t_small = transfer_time_s(d, 0);
  EXPECT_DOUBLE_EQ(t_small, d.pcie_latency_s);
  const double t_1gb = transfer_time_s(d, 1'000'000'000);
  EXPECT_NEAR(t_1gb, d.pcie_latency_s + 1.0 / d.pcie_bandwidth_gbps, 1e-9);
  EXPECT_GT(transfer_time_s(d, 2'000'000'000), t_1gb);
}

}  // namespace
}  // namespace lgg::gpusim

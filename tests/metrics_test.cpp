#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "util/error.hpp"

namespace lgg::graph {
namespace {

TEST(DegreeStats, KnownGraphs) {
  const DegreeStats star_stats = degree_stats(star(10));
  EXPECT_EQ(star_stats.min, 1u);
  EXPECT_EQ(star_stats.max, 9u);
  EXPECT_DOUBLE_EQ(star_stats.mean, 18.0 / 10.0);
  EXPECT_DOUBLE_EQ(star_stats.median, 1.0);
  EXPECT_EQ(star_stats.histogram[1], 9u);
  EXPECT_EQ(star_stats.histogram[9], 1u);

  const DegreeStats k5 = degree_stats(complete(5));
  EXPECT_EQ(k5.min, 4u);
  EXPECT_EQ(k5.max, 4u);
  EXPECT_DOUBLE_EQ(k5.median, 4.0);
}

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = degree_stats(Graph(0));
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Density, KnownValues) {
  EXPECT_DOUBLE_EQ(density(complete(10)), 1.0);
  EXPECT_DOUBLE_EQ(density(Graph(10)), 0.0);
  EXPECT_DOUBLE_EQ(density(Graph(1)), 0.0);
  EXPECT_DOUBLE_EQ(density(path(5)), 4.0 / 10.0);
}

TEST(CoreDecomposition, KnownCores) {
  // Complete graph K_n: everything in the (n-1)-core.
  const CoreDecomposition kd = core_decomposition(complete(6));
  EXPECT_EQ(kd.degeneracy, 5u);
  for (const auto c : kd.core) EXPECT_EQ(c, 5u);

  // Trees are 1-degenerate.
  EXPECT_EQ(core_decomposition(star(20)).degeneracy, 1u);
  EXPECT_EQ(core_decomposition(path(20)).degeneracy, 1u);

  // Cycles are 2-cores.
  const CoreDecomposition cd = core_decomposition(cycle(8));
  EXPECT_EQ(cd.degeneracy, 2u);
  for (const auto c : cd.core) EXPECT_EQ(c, 2u);

  // K4 with a pendant: the pendant has core 1, the clique core 3.
  Graph g = Graph::from_edges(
      5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
                           {3, 4}});
  const CoreDecomposition mixed = core_decomposition(g);
  EXPECT_EQ(mixed.core[4], 1u);
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(mixed.core[v], 3u);
  EXPECT_EQ(mixed.degeneracy, 3u);
}

TEST(CoreDecomposition, OrderIsDegenerate) {
  // In the removal order, every vertex has at most `degeneracy` neighbours
  // that come later.
  const Graph g = erdos_renyi(120, 0.06, 13);
  const CoreDecomposition d = core_decomposition(g);
  ASSERT_EQ(d.order.size(), g.num_vertices());
  std::vector<std::size_t> position(g.num_vertices());
  for (std::size_t i = 0; i < d.order.size(); ++i) position[d.order[i]] = i;
  for (const Vertex v : d.order) {
    std::size_t later = 0;
    for (const Vertex u : g.neighbors(v))
      if (position[u] > position[v]) ++later;
    EXPECT_LE(later, d.degeneracy);
  }
}

TEST(CoreDecomposition, CoreNumbersAreCorrectBySubgraphCheck) {
  // Every vertex of the k-core has >= k neighbours inside the k-core.
  const Graph g = erdos_renyi(100, 0.08, 7);
  const CoreDecomposition d = core_decomposition(g);
  for (std::uint32_t k = 1; k <= d.degeneracy; ++k) {
    const auto members = kcore_vertices(g, k);
    std::vector<bool> in(g.num_vertices(), false);
    for (const Vertex v : members) in[v] = true;
    for (const Vertex v : members) {
      std::size_t inside = 0;
      for (const Vertex u : g.neighbors(v))
        if (in[u]) ++inside;
      EXPECT_GE(inside, k) << "vertex " << v << " in claimed " << k
                           << "-core";
    }
  }
}

TEST(KCore, TrianglesLiveInTwoCore) {
  const Graph g = erdos_renyi(80, 0.05, 19);
  const auto two_core = kcore_vertices(g, 2);
  std::vector<bool> in(g.num_vertices(), false);
  for (const Vertex v : two_core) in[v] = true;
  // Any edge with both endpoints of degree >= 2 inside triangles...
  // direct check: every triangle's vertices are in the 2-core.
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    for (const Vertex v : g.neighbors(u))
      for (const Vertex w : g.neighbors(v))
        if (u < v && v < w && g.has_edge(u, w)) {
          EXPECT_TRUE(in[u] && in[v] && in[w]);
        }
}

TEST(Diameter, DoubleSweepKnownGraphs) {
  EXPECT_EQ(diameter_double_sweep(path(10)), 9u);   // exact on trees
  EXPECT_EQ(diameter_double_sweep(star(10)), 2u);
  EXPECT_EQ(diameter_double_sweep(complete(6)), 1u);
  EXPECT_GE(diameter_double_sweep(cycle(10)), 5u);  // lower bound
  EXPECT_EQ(diameter_double_sweep(Graph(0)), 0u);
  EXPECT_THROW(diameter_double_sweep(Graph(2), 5), lgg::Error);
}

TEST(Assortativity, KnownSigns) {
  // Star: max-degree centre always pairs with degree-1 leaves —
  // perfectly disassortative.
  EXPECT_LT(degree_assortativity(star(20)), -0.9);
  // Regular graphs have zero degree variance.
  EXPECT_DOUBLE_EQ(degree_assortativity(cycle(12)), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(complete(6)), 0.0);
  // BA graphs are known to be slightly disassortative-to-neutral.
  const double ba = degree_assortativity(barabasi_albert(500, 3, 3));
  EXPECT_LT(ba, 0.2);
  EXPECT_GT(ba, -0.8);
}

}  // namespace
}  // namespace lgg::graph

// Observability layer (DESIGN.md §12): tracer timeline semantics, the
// byte-identical-across-ExecPolicies determinism contract, counter
// aggregation against driver reports, and exporter formats.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "core/bfs_gpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "resilience/fault.hpp"
#include "resilience/runner.hpp"

namespace lgg {
namespace {

// ---- tracer timeline --------------------------------------------------

TEST(Tracer, ChildrenTileParentAndPropagateCursor) {
  obs::Tracer t;
  const auto root = t.begin("root", "driver");
  const auto a = t.begin("a", "plan");
  t.charge_s(1.0);
  t.end(a);
  const auto b = t.begin("b", "launch");
  t.charge_s(2.0);
  t.end(b);
  t.end(root);

  const auto& spans = t.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].begin_ns, 0u);
  EXPECT_EQ(spans[0].end_ns, 3'000'000'000u);
  // a occupies [0, 1s); b begins where a ended.
  EXPECT_EQ(spans[1].begin_ns, 0u);
  EXPECT_EQ(spans[1].end_ns, 1'000'000'000u);
  EXPECT_EQ(spans[2].begin_ns, 1'000'000'000u);
  EXPECT_EQ(spans[2].end_ns, 3'000'000'000u);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, 0);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(t.open_depth(), 0u);
}

TEST(Tracer, ChargeOutsideAnySpanAdvancesTopCursor) {
  obs::Tracer t;
  t.charge_s(0.5);
  const auto s = t.begin("late", "driver");
  t.end(s);
  EXPECT_EQ(t.spans()[0].begin_ns, 500'000'000u);
}

TEST(Tracer, SpanCapDropsButKeepsTimelineConsistent) {
  obs::Tracer t;
  t.set_span_cap(1);
  const auto kept = t.begin("kept", "driver");
  const auto dropped = t.begin("dropped", "plan");
  EXPECT_EQ(dropped, obs::Tracer::kDropped);
  t.charge_s(1.0);               // charges the dropped frame's cursor...
  t.arg(dropped, "k", "1");      // no-op, must not crash
  t.end(dropped);
  t.end(kept);
  ASSERT_EQ(t.spans().size(), 1u);
  // ...which still propagates into the recorded parent on close.
  EXPECT_EQ(t.spans()[0].duration_ns(), 1'000'000'000u);
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(Scope, NullSessionIsInertAndCloseIsIdempotent) {
  obs::Scope s(nullptr, "x", "driver");
  EXPECT_FALSE(static_cast<bool>(s));
  s.model_s(1.0);
  s.arg("k", std::uint64_t{1});
  s.close();
  s.close();  // destructor will close a third time; all no-ops
}

// ---- determinism: byte-identical exports across ExecPolicies ----------

struct Exports {
  std::string trace, tree, prom;
};

Exports run_triangle(const graph::Graph& g, const gpusim::ExecPolicy& exec) {
  obs::Session session;
  core::GpuTriangleOptions opts;
  opts.exec = exec;
  opts.obs = &session;
  core::count_triangles_gpu(g, opts);
  return {obs::chrome_trace_json(session.tracer),
          obs::span_tree_text(session.tracer),
          session.metrics.prometheus_text()};
}

TEST(ObsDeterminism, TriangleExportsIdenticalAcrossExecPolicies) {
  const graph::Graph g = graph::layered_random(300, 40, 0.15, 0.08, 11);
  const Exports serial = run_triangle(g, gpusim::ExecPolicy::serial());
  for (const auto threads : {1u, 4u}) {
    const Exports par = run_triangle(g, gpusim::ExecPolicy::parallel(threads));
    EXPECT_EQ(serial.trace, par.trace) << "threads=" << threads;
    EXPECT_EQ(serial.tree, par.tree) << "threads=" << threads;
    EXPECT_EQ(serial.prom, par.prom) << "threads=" << threads;
  }
}

Exports run_resilient_faulty(const graph::Graph& g,
                             const gpusim::ExecPolicy& exec) {
  resilience::FaultInjector injector(21,
                                     resilience::FaultRates::uniform(0.15));
  obs::Session session;
  resilience::RunnerOptions opts;
  opts.exec = exec;
  opts.faults = &injector;
  opts.obs = &session;
  resilience::run_resilient(g, opts);
  return {obs::chrome_trace_json(session.tracer),
          obs::span_tree_text(session.tracer),
          session.metrics.prometheus_text()};
}

TEST(ObsDeterminism, ResilientFaultyExportsIdenticalAcrossExecPolicies) {
  const graph::Graph g = graph::layered_random(400, 60, 0.12, 0.06, 5);
  const Exports serial = run_resilient_faulty(g, gpusim::ExecPolicy::serial());
  const Exports par = run_resilient_faulty(g, gpusim::ExecPolicy::parallel(4));
  EXPECT_EQ(serial.trace, par.trace);
  EXPECT_EQ(serial.tree, par.tree);
  EXPECT_EQ(serial.prom, par.prom);
}

TEST(ObsDeterminism, ResilientTraceCarriesAllPipelinePhases) {
  const graph::Graph g = graph::layered_random(400, 60, 0.12, 0.06, 5);
  obs::Session session;
  resilience::RunnerOptions opts;
  opts.obs = &session;  // fault-free: the retry phase must still appear
  resilience::run_resilient(g, opts);
  bool has_plan = false, has_sched = false, has_launch = false,
       has_retry = false;
  for (const auto& s : session.tracer.spans()) {
    if (s.cat == "plan") has_plan = true;
    if (s.cat == "schedule") has_sched = true;
    if (s.cat == "launch") has_launch = true;
    if (s.cat == "retry") has_retry = true;
  }
  EXPECT_TRUE(has_plan);
  EXPECT_TRUE(has_sched);
  EXPECT_TRUE(has_launch);
  EXPECT_TRUE(has_retry);
}

// ---- counter aggregation vs driver reports ----------------------------

TEST(ObsCounters, TriangleCountersMatchKernelReportExactly) {
  const graph::Graph g = graph::layered_random(300, 40, 0.15, 0.08, 11);
  obs::Session session;
  core::GpuTriangleOptions opts;
  opts.obs = &session;
  const auto r = core::count_triangles_gpu(g, opts);
  const auto& m = session.metrics;
  EXPECT_EQ(m.counter_value("lgg_gpusim_launches_total"), 1u);
  EXPECT_EQ(m.counter_value("lgg_gpusim_global_slots_total"),
            r.kernel.global_slots);
  EXPECT_EQ(m.counter_value("lgg_gpusim_transactions_total"),
            r.kernel.transactions);
  EXPECT_EQ(m.counter_value("lgg_gpusim_bytes_total"), r.kernel.bytes);
  EXPECT_EQ(m.counter_value("lgg_gpusim_shared_slots_total"),
            r.kernel.shared_slots);
  EXPECT_EQ(m.counter_value("lgg_gpusim_bank_conflict_steps_total"),
            r.kernel.bank_conflict_steps);
  EXPECT_DOUBLE_EQ(m.counter_f_value("lgg_gpusim_kernel_seconds_total"),
                   r.kernel.kernel_time_s);
  EXPECT_EQ(m.counter_value("lgg_gpusim_transfer_bytes_total"),
            r.transfer.bytes);
}

TEST(ObsCounters, SampledTriangleCountersMatchRescaledReport) {
  // The rescale invariant: counters must reflect the FINAL (post-rescale)
  // KernelReport the caller sees, not the raw sampled simulation.
  const graph::Graph g = graph::layered_random(600, 80, 0.1, 0.05, 3);
  obs::Session session;
  core::GpuTriangleOptions opts;
  opts.max_simulated_tests = 1000;  // forces sampling + rescale
  opts.obs = &session;
  const auto r = core::count_triangles_gpu(g, opts);
  ASSERT_LT(r.kernel.sample_fraction, 1.0);
  EXPECT_EQ(session.metrics.counter_value("lgg_gpusim_transactions_total"),
            r.kernel.transactions);
  EXPECT_EQ(session.metrics.counter_value("lgg_gpusim_global_slots_total"),
            r.kernel.global_slots);
}

TEST(ObsCounters, BfsAggregatesAcrossLevelLaunches) {
  const graph::Graph g = graph::layered_random(500, 50, 0.1, 0.05, 9);
  obs::Session session;
  core::GpuBfsOptions opts;
  opts.obs = &session;
  const auto r = core::bfs_gpu(g, 0, opts);
  EXPECT_EQ(session.metrics.counter_value("lgg_gpusim_launches_total"),
            r.iterations);
  EXPECT_EQ(session.metrics.counter_value("lgg_gpusim_transactions_total"),
            r.transactions);
  EXPECT_EQ(session.metrics.counter_value("lgg_gpusim_bytes_total"), r.bytes);
  // One launch span per level, all on the modelled timeline.
  std::size_t launches = 0;
  for (const auto& s : session.tracer.spans())
    if (s.cat == "launch") ++launches;
  EXPECT_EQ(launches, r.iterations);
}

// ---- exporters --------------------------------------------------------

TEST(ObsHazards, RecordedHazardsEmitSpanEventsAndCounters) {
  // Satellite of the sancheck integration (DESIGN.md §12/§16): every
  // recorded hazard becomes a zero-duration span event under the current
  // frame, carrying the class in the name and the site in the args — and
  // a hazard-free report emits nothing, keeping fault-free traces golden.
  obs::Session sess;
  const auto root = sess.tracer.begin("launch", "launch");

  gpusim::HazardReport clean;
  obs::record_hazards(&sess, clean);

  gpusim::HazardReport report;
  gpusim::Hazard race;
  race.cls = gpusim::HazardClass::kSharedRace;
  race.addr = 128;
  race.bytes = 4;
  race.first_thread = 3;
  race.second_thread = 35;
  race.message = "shared race at bank 0";
  gpusim::Hazard oob;
  oob.cls = gpusim::HazardClass::kOutOfBounds;
  oob.addr = 4096;
  oob.bytes = 8;
  oob.first_thread = 7;
  report.hazards = {race, oob};
  report.total = 2;
  report.by_class[static_cast<std::size_t>(gpusim::HazardClass::kSharedRace)] =
      1;
  report.by_class[static_cast<std::size_t>(
      gpusim::HazardClass::kOutOfBounds)] = 1;
  obs::record_hazards(&sess, report);
  sess.tracer.end(root);

  const std::string spans = obs::span_tree_text(sess.tracer);
  EXPECT_NE(spans.find("hazard/shared-memory-race"), std::string::npos);
  EXPECT_NE(spans.find("hazard/out-of-bounds"), std::string::npos);

  const std::string json = obs::chrome_trace_json(sess.tracer);
  EXPECT_NE(json.find("\"cat\":\"sancheck\""), std::string::npos);
  EXPECT_NE(json.find("\"addr\":128"), std::string::npos);
  EXPECT_NE(json.find("\"second_thread\":35"), std::string::npos);
  EXPECT_NE(json.find("shared race at bank 0"), std::string::npos);

  const std::string prom = sess.metrics.prometheus_text();
  EXPECT_NE(prom.find("lgg_sancheck_hazards_total 2"), std::string::npos);
  EXPECT_NE(prom.find("class=\"shared-memory-race\""), std::string::npos);
}

TEST(Exporters, JsonEscaping) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Exporters, ChromeTraceShapeAndArgs) {
  obs::Tracer t;
  const auto s = t.begin("kernel \"q\"", "launch");
  t.arg(s, "tests", "42");
  t.charge_s(0.001);
  t.end(s);
  const std::string json = obs::chrome_trace_json(t);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel \\\"q\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"launch\""), std::string::npos);
  EXPECT_NE(json.find("\"tests\":42"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);  // µs
}

TEST(Exporters, PrometheusHistogramIsCumulative) {
  obs::Metrics m;
  const std::array<double, 2> bounds = {1.0, 2.0};
  m.observe("lgg_test_hist", 0.5, bounds);
  m.observe("lgg_test_hist", 1.5, bounds);
  m.observe("lgg_test_hist", 99.0, bounds);
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("# TYPE lgg_test_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("lgg_test_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lgg_test_hist_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lgg_test_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lgg_test_hist_count 3"), std::string::npos);
}

TEST(Exporters, PrometheusCountersSortedWithLabels) {
  obs::Metrics m;
  m.count("lgg_b_total", 2, "kind=\"y\"");
  m.count("lgg_b_total", 1, "kind=\"x\"");
  m.count("lgg_a_total", 5);
  m.help("lgg_a_total", "a help line");
  const std::string text = m.prometheus_text();
  const auto a = text.find("lgg_a_total 5");
  const auto bx = text.find("lgg_b_total{kind=\"x\"} 1");
  const auto by = text.find("lgg_b_total{kind=\"y\"} 2");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(bx, std::string::npos);
  ASSERT_NE(by, std::string::npos);
  EXPECT_LT(a, bx);
  EXPECT_LT(bx, by);
  EXPECT_NE(text.find("# HELP lgg_a_total a help line"), std::string::npos);
}

TEST(Metrics, MergeAddsCountersAndHistograms) {
  obs::Metrics a, b;
  const std::array<double, 1> bounds = {1.0};
  a.count("lgg_x_total", 1);
  b.count("lgg_x_total", 2);
  b.count("lgg_y_total", 7);
  a.observe("lgg_h", 0.5, bounds);
  b.observe("lgg_h", 3.0, bounds);
  a.merge(b);
  EXPECT_EQ(a.counter_value("lgg_x_total"), 3u);
  EXPECT_EQ(a.counter_value("lgg_y_total"), 7u);
  const auto* h = a.histogram("lgg_h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->observations, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 3.5);
}

}  // namespace
}  // namespace lgg

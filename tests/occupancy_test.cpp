#include <gtest/gtest.h>

#include "gpusim/occupancy.hpp"
#include "util/error.hpp"

namespace lgg::gpusim {
namespace {

KernelResources res(std::uint32_t tpb, std::uint32_t regs,
                    std::uint32_t shared) {
  return {tpb, regs, shared};
}

TEST(Occupancy, FullOccupancyLightKernel) {
  // 128 threads, 16 regs, no shared: C1060 fits 8 blocks = 32 warps = 1.0?
  // 8 blocks * 128 threads = 1024 threads = 32 warps: exactly the cap.
  const OccupancyResult r = occupancy(tesla_c1060(), res(128, 4, 0));
  EXPECT_EQ(r.blocks_per_sm, 8u);
  EXPECT_EQ(r.warps_per_sm, 32u);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  // 16384 regs / (32 regs * 256 threads) = 2 blocks -> 16 warps of 32.
  const OccupancyResult r = occupancy(tesla_c1060(), res(256, 32, 0));
  EXPECT_EQ(r.blocks_per_sm, 2u);
  EXPECT_EQ(r.limiter, OccupancyLimiter::kRegisters);
  EXPECT_DOUBLE_EQ(r.occupancy, 0.5);
}

TEST(Occupancy, SharedMemoryLimited) {
  // 16 KiB shared / 6 KiB per block = 2 blocks.
  const OccupancyResult r = occupancy(tesla_c1060(), res(64, 8, 6 * 1024));
  EXPECT_EQ(r.blocks_per_sm, 2u);
  EXPECT_EQ(r.limiter, OccupancyLimiter::kSharedMemory);
}

TEST(Occupancy, BlockSlotLimited) {
  // Tiny blocks: 32 threads -> warp slots allow 32 blocks but hardware
  // caps at 8 resident blocks.
  const OccupancyResult r = occupancy(tesla_c1060(), res(32, 4, 0));
  EXPECT_EQ(r.blocks_per_sm, 8u);
  EXPECT_EQ(r.limiter, OccupancyLimiter::kBlockSlots);
  EXPECT_DOUBLE_EQ(r.occupancy, 0.25);  // 8 warps of 32
}

TEST(Occupancy, ThreadSlotLimitOnFermi) {
  // C2050: 1536 threads / 512 per block = 3 blocks = 48 warps (full).
  const OccupancyResult r = occupancy(tesla_c2050(), res(512, 16, 0));
  EXPECT_EQ(r.blocks_per_sm, 3u);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
}

TEST(Occupancy, ImpossibleKernelThrows) {
  // One block needs more shared memory than the SM has.
  EXPECT_THROW(occupancy(tesla_c1060(), res(128, 8, 32 * 1024)), lgg::Error);
  // Or more registers than the file.
  EXPECT_THROW(occupancy(tesla_c1060(), res(512, 124, 0)), lgg::Error);
  EXPECT_THROW(occupancy(tesla_c1060(), res(0, 8, 0)), lgg::Error);
}

TEST(Occupancy, LimiterNames) {
  EXPECT_STREQ(to_string(OccupancyLimiter::kWarpSlots), "warp slots");
  EXPECT_STREQ(to_string(OccupancyLimiter::kRegisters), "registers");
  EXPECT_STREQ(to_string(OccupancyLimiter::kSharedMemory), "shared memory");
}

TEST(Occupancy, MonotoneInRegisters) {
  double prev = 1.1;
  for (const std::uint32_t regs : {8u, 16u, 32u, 64u}) {
    const OccupancyResult r = occupancy(tesla_c1060(), res(128, regs, 0));
    EXPECT_LE(r.occupancy, prev);
    prev = r.occupancy;
  }
}

}  // namespace
}  // namespace lgg::gpusim

#include <gtest/gtest.h>

#include "gpusim/partition.hpp"
#include "util/error.hpp"

namespace lgg::gpusim {
namespace {

TEST(PartitionModel, AddressMapping) {
  const PartitionModel model(8, 256);
  EXPECT_EQ(model.partition_of(0), 0u);
  EXPECT_EQ(model.partition_of(255), 0u);
  EXPECT_EQ(model.partition_of(256), 1u);
  EXPECT_EQ(model.partition_of(256 * 7), 7u);
  EXPECT_EQ(model.partition_of(256 * 8), 0u);  // wraps round-robin
  EXPECT_EQ(model.partition_of(256 * 9 + 17), 1u);
}

TEST(PartitionModel, FromDeviceSpec) {
  const PartitionModel model(tesla_c1060());
  EXPECT_EQ(model.partitions(), 8u);
  EXPECT_EQ(model.width_bytes(), 256u);
}

TEST(PartitionHistogram, CampingExtreme) {
  // Fig. 6: every access in the same partition.
  const PartitionModel model(8, 256);
  PartitionHistogram h;
  for (int i = 0; i < 64; ++i) h.add(model, 256 * 8ull * i);  // all part 0
  EXPECT_EQ(h.total, 64u);
  EXPECT_EQ(h.serialized_steps(), 64u);
  EXPECT_EQ(h.ideal_steps(), 8u);
  EXPECT_DOUBLE_EQ(h.camping_factor(), 8.0);
}

TEST(PartitionHistogram, PerfectSpread) {
  // Fig. 7: accesses spread modulo the partition count.
  const PartitionModel model(8, 256);
  PartitionHistogram h;
  for (int i = 0; i < 64; ++i) h.add(model, 256ull * i);
  EXPECT_EQ(h.serialized_steps(), 8u);
  EXPECT_EQ(h.ideal_steps(), 8u);
  EXPECT_DOUBLE_EQ(h.camping_factor(), 1.0);
}

TEST(PartitionHistogram, EmptyIsNeutral) {
  PartitionHistogram h;
  EXPECT_EQ(h.serialized_steps(), 0u);
  EXPECT_EQ(h.ideal_steps(), 0u);
  EXPECT_DOUBLE_EQ(h.camping_factor(), 1.0);
}

TEST(PartitionHistogram, AddTransactions) {
  const PartitionModel model(4, 256);
  PartitionHistogram h;
  const std::vector<Transaction> txns{{0, 64}, {256, 64}, {512, 64}};
  h.add_transactions(model, txns);
  EXPECT_EQ(h.total, 3u);
  EXPECT_EQ(h.count[0], 1u);
  EXPECT_EQ(h.count[1], 1u);
  EXPECT_EQ(h.count[2], 1u);
  EXPECT_EQ(h.count[3], 0u);
}

TEST(PartitionHistogram, MergeAccumulates) {
  const PartitionModel model(4, 256);
  PartitionHistogram a, b;
  a.add(model, 0);
  b.add(model, 256);
  b.add(model, 0);
  a.merge(b);
  EXPECT_EQ(a.total, 3u);
  EXPECT_EQ(a.count[0], 2u);
  EXPECT_EQ(a.count[1], 1u);
}

TEST(PartitionHistogram, MergeMismatchThrows) {
  PartitionHistogram a, b;
  a.add(PartitionModel(4, 256), 0);
  b.add(PartitionModel(8, 256), 0);
  EXPECT_THROW(a.merge(b), lgg::Error);
}

TEST(PartitionHistogram, MergeIntoEmpty) {
  PartitionHistogram a, b;
  b.add(PartitionModel(4, 256), 256);
  a.merge(b);
  EXPECT_EQ(a.total, 1u);
  EXPECT_EQ(a.count[1], 1u);
}

// Paper Eq. 11: warp i -> partition i % p spreads perfectly for any warp
// count that is a multiple of p.
TEST(PartitionHistogram, Eq11MappingIsCampingFree) {
  const PartitionModel model(6, 256);
  PartitionHistogram h;
  for (std::uint32_t warp = 0; warp < 30; ++warp) {
    const std::uint32_t target = warp % model.partitions();
    h.add(model, static_cast<std::uint64_t>(target) * 256);
  }
  EXPECT_DOUBLE_EQ(h.camping_factor(), 1.0);
}

}  // namespace
}  // namespace lgg::gpusim

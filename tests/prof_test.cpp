// lgg_prof tests (DESIGN.md §17): profile counters must equal the
// KernelReport the caller sees, obey the documented invariants
// (coalesced + uncoalesced == transactions, ideal + replays ==
// transactions, camping conflicts match the partition model), survive
// the drivers' sampled-rescale transformation, and every export must be
// byte-identical across host execution policies.  The diff engine is
// the CI gate: exact equality passes, tampering fails, tolerances and
// ignore patterns behave per the prom_diff contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lgg.hpp"

namespace lgg {
namespace {

graph::Graph test_graph() {
  return graph::layered_random(300, 40, 0.15, 0.08, 11);
}

/// Everything the profiler can export, captured from one traced run.
struct ProfRun {
  core::GpuTriangleResult result;
  std::vector<prof::KernelProfile> profiles;
  std::string profile;
  std::string tree;
  std::string flame;
  std::string trace;
  std::vector<std::string> tracks;
};

ProfRun run_gpu(const graph::Graph& g, gpusim::ExecPolicy exec,
                core::GpuLayout layout = core::GpuLayout::kCoalescedAntiCamping,
                std::uint64_t max_tests = 0) {
  obs::Session sess;
  prof::Profiler profiler(&sess);
  core::GpuTriangleOptions opts;
  opts.layout = layout;
  opts.exec = exec;
  opts.obs = &sess;
  opts.prof = &profiler;
  opts.max_simulated_tests = max_tests;
  ProfRun r;
  r.result = core::count_triangles_gpu(g, opts);
  r.profiles = profiler.profiles();
  r.profile = profiler.profile_text();
  r.tree = profiler.profile_tree_text();
  r.flame = prof::flamegraph_text(sess.tracer);
  r.tracks = profiler.counter_track_events();
  r.trace = obs::chrome_trace_json(sess.tracer, r.tracks);
  return r;
}

TEST(ProfCounters, MatchKernelReportAndInvariants) {
  const graph::Graph g = test_graph();
  const ProfRun r = run_gpu(g, gpusim::ExecPolicy::serial());
  ASSERT_EQ(r.profiles.size(), 1u);
  const prof::KernelProfile& p = r.profiles.front();
  const gpusim::KernelReport& k = r.result.kernel;

  // The profile IS the caller-visible report, field for field.
  EXPECT_EQ(p.global_slots, k.global_slots);
  EXPECT_EQ(p.transactions, k.transactions);
  EXPECT_EQ(p.bytes, k.bytes);
  EXPECT_EQ(p.shared_slots, k.shared_slots);
  EXPECT_EQ(p.bank_conflict_steps, k.bank_conflict_steps);
  EXPECT_DOUBLE_EQ(p.warp_instructions, k.warp_instructions);
  EXPECT_DOUBLE_EQ(p.camping_factor, k.camping_factor);
  EXPECT_DOUBLE_EQ(p.kernel_time_s, k.kernel_time_s);

  // Documented LaunchCounters invariants.
  EXPECT_EQ(p.coalesced_slots + p.uncoalesced_slots, p.global_slots);
  EXPECT_EQ(p.coalesced_transactions + p.uncoalesced_transactions,
            p.transactions);
  EXPECT_EQ(p.ideal_transactions + p.memory_replays, p.transactions);
  EXPECT_LE(p.ideal_transactions, p.transactions);
  EXPECT_EQ(p.shared_accesses + p.shared_replays, p.bank_conflict_steps);

  // Per-SM rows re-sum to the launch totals.
  std::uint64_t slots = 0, txns = 0, warps = 0;
  for (const gpusim::SmCounters& c : p.sms) {
    slots += c.global_slots;
    txns += c.transactions;
    warps += c.warps;
  }
  EXPECT_EQ(slots, p.global_slots);
  EXPECT_EQ(txns, p.transactions);
  EXPECT_EQ(warps, p.warps);
}

TEST(ProfCounters, CampingMatchesPartitionModel) {
  // The naive layout is the Figs. 6/7 camping workload: the profile's
  // conflict accounting must re-derive from the report's histogram.
  const graph::Graph g = test_graph();
  const ProfRun r = run_gpu(g, gpusim::ExecPolicy::serial(),
                            core::GpuLayout::kNaive);
  const prof::KernelProfile& p = r.profiles.front();
  const gpusim::PartitionHistogram& h = r.result.kernel.partition_histogram;
  EXPECT_EQ(p.partition_pressure, h.count);
  EXPECT_EQ(p.partition_total, h.total);
  EXPECT_EQ(p.partition_serialized_steps, h.serialized_steps());
  EXPECT_EQ(p.partition_ideal_steps, h.ideal_steps());
  EXPECT_DOUBLE_EQ(p.camping_factor, h.camping_factor());
  EXPECT_EQ(p.camping_conflict_steps(),
            h.serialized_steps() -
                std::min(h.ideal_steps(), h.serialized_steps()));
  EXPECT_GT(p.transactions, 0u);
}

TEST(ProfCounters, RescaledProfileTracksSampledReport) {
  // A truncating test budget rescales the KernelReport; rescale_last
  // must keep the recorded profile identical to the final report.
  const graph::Graph g = test_graph();
  const ProfRun r =
      run_gpu(g, gpusim::ExecPolicy::serial(),
              core::GpuLayout::kCoalescedAntiCamping, 1000);
  ASSERT_FALSE(r.result.exact);
  const prof::KernelProfile& p = r.profiles.front();
  const gpusim::KernelReport& k = r.result.kernel;
  EXPECT_EQ(p.transactions, k.transactions);
  EXPECT_EQ(p.bytes, k.bytes);
  EXPECT_EQ(p.bank_conflict_steps, k.bank_conflict_steps);
  EXPECT_DOUBLE_EQ(p.camping_factor, k.camping_factor);
  EXPECT_DOUBLE_EQ(p.kernel_time_s, k.kernel_time_s);
  EXPECT_DOUBLE_EQ(p.sample_fraction, k.sample_fraction);
  EXPECT_LT(p.sample_fraction, 1.0);
  // Invariants survive the rescale.
  EXPECT_EQ(p.coalesced_transactions + p.uncoalesced_transactions,
            p.transactions);
  EXPECT_EQ(p.ideal_transactions + p.memory_replays, p.transactions);
  EXPECT_EQ(p.shared_accesses + p.shared_replays, p.bank_conflict_steps);
}

TEST(ProfDeterminism, ExportsByteIdenticalAcrossPolicies) {
  const graph::Graph g = test_graph();
  const ProfRun serial = run_gpu(g, gpusim::ExecPolicy::serial());
  for (const std::size_t threads : {1u, 8u}) {
    const ProfRun par = run_gpu(g, gpusim::ExecPolicy::parallel(threads));
    EXPECT_EQ(serial.profile, par.profile) << "threads=" << threads;
    EXPECT_EQ(serial.tree, par.tree) << "threads=" << threads;
    EXPECT_EQ(serial.flame, par.flame) << "threads=" << threads;
    EXPECT_EQ(serial.tracks, par.tracks) << "threads=" << threads;
    EXPECT_EQ(serial.trace, par.trace) << "threads=" << threads;
  }
}

TEST(ProfDeterminism, ResilientRunAttributesChunks) {
  // Multi-chunk pipeline: one profile per chunk launch, each attributed
  // to its chunk's span path, byte-identical across policies.
  const graph::Graph g = test_graph();
  const auto run = [&](gpusim::ExecPolicy exec) {
    obs::Session sess;
    prof::Profiler profiler(&sess);
    resilience::RunnerOptions opts;
    opts.exec = exec;
    opts.obs = &sess;
    opts.prof = &profiler;
    const resilience::RunnerReport rep = resilience::run_resilient(g, opts);
    EXPECT_TRUE(rep.exact);
    return std::pair<std::string, std::size_t>(profiler.profile_text(),
                                               profiler.profiles().size());
  };
  const auto serial = run(gpusim::ExecPolicy::serial());
  const auto par = run(gpusim::ExecPolicy::parallel(8));
  EXPECT_GT(serial.second, 0u);
  EXPECT_EQ(serial.first, par.first);
  EXPECT_NE(serial.first.find("stack="), std::string::npos);
  EXPECT_NE(serial.first.find("chunk["), std::string::npos);
}

TEST(ProfExports, MetricsAggregateAndTracksRender) {
  const graph::Graph g = test_graph();
  obs::Session sess;
  prof::Profiler profiler(&sess);
  core::GpuTriangleOptions opts;
  opts.layout = core::GpuLayout::kNaive;
  opts.obs = &sess;
  opts.prof = &profiler;
  const auto result = core::count_triangles_gpu(g, opts);
  profiler.export_metrics(sess.metrics);
  EXPECT_EQ(sess.metrics.counter_value("lgg_prof_launches_total"), 1u);
  EXPECT_EQ(sess.metrics.counter_value("lgg_prof_coalesced_transactions_total") +
                sess.metrics.counter_value(
                    "lgg_prof_uncoalesced_transactions_total"),
            result.kernel.transactions);
  // Counter-track events are valid one-line JSON objects on the modelled
  // timeline and splice into a loadable Chrome trace.
  const std::vector<std::string> tracks = profiler.counter_track_events();
  ASSERT_FALSE(tracks.empty());
  for (const std::string& ev : tracks) {
    EXPECT_EQ(ev.front(), '{');
    EXPECT_EQ(ev.back(), '}');
    EXPECT_NE(ev.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(ev.find("lgg_prof/"), std::string::npos);
  }
  const std::string trace = obs::chrome_trace_json(sess.tracer, tracks);
  EXPECT_NE(trace.find("lgg_prof/transactions"), std::string::npos);
  EXPECT_NE(trace.find("\"camping_factor\""), std::string::npos);
}

TEST(ProfFlamegraph, SelfTimeExcludesChildren) {
  obs::Tracer t;
  const std::size_t root = t.begin("root", "test");
  t.charge_ns(100);
  const std::size_t c1 = t.begin("child", "test");
  t.charge_ns(40);
  t.end(c1);
  const std::size_t c2 = t.begin("child", "test");  // same stack: aggregates
  t.charge_ns(10);
  t.end(c2);
  t.charge_ns(50);
  t.end(root);
  const std::string flame = prof::flamegraph_text(t);
  EXPECT_EQ(flame, "root 150\nroot;child 50\n");
}

TEST(ProfDiff, ExactAndToleranced) {
  const std::string a =
      "# comment\n"
      "lgg_prof_launches 2\n"
      "lgg_prof_transactions{kernel=\"k\",launch=\"0\"} 1000\n"
      "lgg_prof_kernel_time_s{kernel=\"k\",launch=\"0\"} 0.5\n";
  // Identical text: clean diff.
  EXPECT_TRUE(prof::diff_profile_text(a, a).equal);

  // A 0.5% drift fails exact comparison but passes rtol 1%.
  std::string b = a;
  b.replace(b.find("1000"), 4, "1005");
  EXPECT_FALSE(prof::diff_profile_text(a, b).equal);
  prof::DiffOptions tol;
  tol.rtol = 0.01;
  EXPECT_TRUE(prof::diff_profile_text(a, b, tol).equal);

  // Ignore patterns drop series wholesale.
  prof::DiffOptions ign;
  ign.ignore = {"transactions"};
  EXPECT_TRUE(prof::diff_profile_text(a, b, ign).equal);

  // A key present on only one side always differs, whatever the rtol.
  const std::string c = a + "lgg_prof_extra 1\n";
  prof::DiffOptions loose;
  loose.rtol = 100.0;
  const prof::DiffResult r = prof::diff_profile_text(a, c, loose);
  EXPECT_FALSE(r.equal);
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_NE(r.diffs[0].find("only in B"), std::string::npos);
}

TEST(ProfDiff, ReportsValueMismatchDeterministically) {
  const std::string a = "x 1\ny 2\nz 3\n";
  const std::string b = "x 1\ny 5\nz 9\n";
  const prof::DiffResult r = prof::diff_profile_text(a, b);
  ASSERT_EQ(r.diffs.size(), 2u);
  EXPECT_NE(r.diffs[0].find("y"), std::string::npos);
  EXPECT_NE(r.diffs[1].find("z"), std::string::npos);
}

TEST(ProfObs, SpanCapDropsAreObservable) {
  obs::Tracer t;
  t.set_span_cap(1);
  const std::size_t kept = t.begin("kept", "test");
  t.charge_ns(10);
  const std::size_t lost = t.begin("dropped", "test");
  t.end(lost);
  t.end(kept);
  EXPECT_EQ(t.dropped(), 1u);
  // The flamegraph still renders from what was recorded.
  EXPECT_NE(prof::flamegraph_text(t).find("kept"), std::string::npos);
}

}  // namespace
}  // namespace lgg

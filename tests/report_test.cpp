#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/calibration.hpp"
#include "gpusim/report.hpp"

namespace lgg::gpusim {
namespace {

TEST(KernelReport, StreamOperatorMentionsKeyFields) {
  KernelReport r;
  r.name = "demo-kernel";
  r.blocks = 60;
  r.threads_per_block = 128;
  r.warps = 240;
  r.global_slots = 100;
  r.transactions = 250;
  r.bytes = 16000;
  r.camping_factor = 1.25;
  r.kernel_time_s = 0.00234;
  std::ostringstream os;
  os << r;
  const std::string s = os.str();
  EXPECT_NE(s.find("demo-kernel"), std::string::npos);
  EXPECT_NE(s.find("240 warps"), std::string::npos);
  EXPECT_NE(s.find("2.50/slot"), std::string::npos);  // transactions/slot
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("ms"), std::string::npos);
}

TEST(KernelReport, SampledRunsAnnotated) {
  KernelReport r;
  r.sample_fraction = 0.25;
  std::ostringstream os;
  os << r;
  EXPECT_NE(os.str().find("sampled"), std::string::npos);
}

TEST(KernelReport, TransactionsPerSlotSafeOnEmpty) {
  const KernelReport r;
  EXPECT_DOUBLE_EQ(r.transactions_per_slot(), 0.0);
}

TEST(RunReport, StreamOperator) {
  RunReport r;
  r.host_to_device = {1 << 20, 0.001};
  r.kernels = 3;
  r.kernel_time_s = 0.5;
  r.total_time_s = 0.75;
  r.mean_camping_factor = 1.1;
  std::ostringstream os;
  os << r;
  EXPECT_NE(os.str().find("3 kernel(s)"), std::string::npos);
  EXPECT_NE(os.str().find("1.00 MiB"), std::string::npos);
}

TEST(Calibration, ConstantsAreSane) {
  namespace cal = calibration;
  // The calibration must stay physically plausible; these bounds guard
  // against accidental unit slips (s vs ms, cycles vs ns).
  EXPECT_GT(cal::kCpuClockGhz, 1.0);
  EXPECT_LT(cal::kCpuClockGhz, 5.0);
  EXPECT_GT(cal::kCpuCyclesPerTest, 10.0);
  EXPECT_LT(cal::kCpuCyclesPerTest, 5000.0);
  EXPECT_GT(cal::kKernelLaunchOverheadS, 1e-7);
  EXPECT_LT(cal::kKernelLaunchOverheadS, 1e-3);
  EXPECT_GT(cal::kDeviceInitOverheadS, 0.01);
  EXPECT_LT(cal::kDeviceInitOverheadS, 2.0);
  EXPECT_GE(cal::kCyclesPerWarpInstruction, 1.0);
}

}  // namespace
}  // namespace lgg::gpusim

// Tests for the fault-injection framework and the resilient chunked
// runner (DESIGN.md §11): injector determinism and replay, DeviceFault
// surfacing through every GPU driver, exact recovery under sustained
// fault rates, FaultPlan/RecoveryStats accounting, log byte-identity
// across host thread counts, and the three failover policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lgg.hpp"

namespace {

using namespace lgg;
using gpusim::DeviceFault;
using gpusim::FaultSite;
using resilience::FaultInjector;
using resilience::FaultPlan;
using resilience::FaultRates;
using resilience::Failover;

graph::Graph test_graph() {
  // Dense enough for a six-digit test count, small enough that CPU
  // recounts stay fast.
  return graph::erdos_renyi(120, 0.15, 42);
}

graph::Graph chunked_graph() {
  // Many BFS levels (chunk boundaries follow the level decomposition):
  // with the tiny-shared device below this splits into ~9 chunks, giving
  // every fault site plenty of draws while staying fast.
  return graph::layered_random(240, 12, 0.5, 0.2, 7);
}

// A C1060 with tiny shared memory: chunk capacity derives from shared
// bits, so chunked_graph() splits into many small chunks — lots of
// fault-site draws per run without a large (slow) graph.
const gpusim::DeviceSpec& tiny_shared_device() {
  static const gpusim::DeviceSpec dev = [] {
    gpusim::DeviceSpec d = gpusim::tesla_c1060();
    d.name = "C1060-tiny-shared";
    d.shared_mem_bytes = 128;  // 1024 bits -> chunks of <= ~45 vertices
    return d;
  }();
  return dev;
}

// ---------------------------------------------------------------- injector

TEST(FaultInjector, RateZeroNeverFires) {
  FaultInjector inj(123, FaultRates{});
  const gpusim::KernelConfig config{};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.on_alloc(64));
    EXPECT_FALSE(inj.on_launch(config));
    EXPECT_FALSE(inj.on_sm_abort(config, 3));
    EXPECT_FALSE(inj.on_transfer(4096));
  }
  EXPECT_EQ(inj.total_faults(), 0u);
  EXPECT_EQ(inj.draws(FaultSite::kAlloc), 1000u);
}

TEST(FaultInjector, RateOneAlwaysFires) {
  FaultInjector inj(123, FaultRates::uniform(1.0));
  const gpusim::KernelConfig config{};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.on_alloc(64));
    EXPECT_TRUE(inj.on_transfer(4096));
  }
  EXPECT_EQ(inj.total_faults(), 200u);
  EXPECT_EQ(inj.count(FaultSite::kAlloc), 100u);
  EXPECT_EQ(inj.count(FaultSite::kTransfer), 100u);
}

TEST(FaultInjector, DecisionsAreDeterministicInSeed) {
  const gpusim::KernelConfig config{};
  std::vector<bool> first;
  for (int run = 0; run < 2; ++run) {
    FaultInjector inj(99, FaultRates::uniform(0.3));
    std::vector<bool> fired;
    for (int i = 0; i < 500; ++i) {
      fired.push_back(inj.on_alloc(8));
      fired.push_back(inj.on_transfer(128));
      fired.push_back(inj.on_sm_abort(config, static_cast<unsigned>(i % 30)));
    }
    if (run == 0)
      first = fired;
    else
      EXPECT_EQ(first, fired);
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  auto pattern = [](std::uint64_t seed) {
    FaultInjector inj(seed, FaultRates::uniform(0.5));
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(inj.on_alloc(8));
    return fired;
  };
  EXPECT_NE(pattern(1), pattern(2));
}

TEST(FaultInjector, RateIsApproximatelyHonoured) {
  FaultInjector inj(7, FaultRates::uniform(0.1));
  for (int i = 0; i < 10000; ++i) inj.on_transfer(64);
  const auto fired = inj.count(FaultSite::kTransfer);
  EXPECT_GT(fired, 700u);  // ~1000 expected; wide deterministic bounds
  EXPECT_LT(fired, 1300u);
}

TEST(FaultInjector, ReplayReproducesRandomRun) {
  const gpusim::KernelConfig config{};
  FaultInjector random(31337, FaultRates::uniform(0.25));
  for (int i = 0; i < 300; ++i) {
    random.on_alloc(static_cast<std::uint64_t>(i));
    random.on_launch(config);
    random.on_transfer(static_cast<std::uint64_t>(2 * i));
  }
  const FaultPlan plan = random.plan();
  ASSERT_GT(plan.events.size(), 0u);

  FaultInjector replay(plan);
  for (int i = 0; i < 300; ++i) {
    replay.on_alloc(static_cast<std::uint64_t>(i));
    replay.on_launch(config);
    replay.on_transfer(static_cast<std::uint64_t>(2 * i));
  }
  EXPECT_EQ(replay.events(), plan.events);
  // And a fresh random injector from the same (seed, rates) regenerates
  // the identical plan.
  FaultInjector again(plan.seed, plan.rates);
  for (int i = 0; i < 300; ++i) {
    again.on_alloc(static_cast<std::uint64_t>(i));
    again.on_launch(config);
    again.on_transfer(static_cast<std::uint64_t>(2 * i));
  }
  EXPECT_EQ(again.events(), plan.events);
}

// -------------------------------------------------- faults reach all drivers

TEST(FaultDrivers, LaunchFaultSurfacesInEveryGpuDriver) {
  const graph::Graph g = graph::complete(12);
  const FaultRates launch_only{0.0, 1.0, 0.0, 0.0};

  {
    FaultInjector inj(1, launch_only);
    core::GpuTriangleOptions opts;
    opts.faults = &inj;
    EXPECT_THROW(core::count_triangles_gpu(g, opts), DeviceFault);
  }
  {
    FaultInjector inj(1, launch_only);
    core::GpuIntersectOptions opts;
    opts.faults = &inj;
    EXPECT_THROW(core::count_triangles_gpu_intersect(g, opts), DeviceFault);
  }
  {
    FaultInjector inj(1, launch_only);
    core::GpuKCountOptions opts;
    opts.faults = &inj;
    EXPECT_THROW(core::count_kcliques_gpu(g, 3, opts), DeviceFault);
  }
  {
    FaultInjector inj(1, launch_only);
    core::GpuBfsOptions opts;
    opts.faults = &inj;
    EXPECT_THROW(core::bfs_gpu(g, 0, opts), DeviceFault);
  }
  {
    FaultInjector inj(1, launch_only);
    core::HybridOptions opts;
    opts.faults = &inj;
    EXPECT_THROW(core::count_triangles_hybrid(g, opts), DeviceFault);
  }
}

TEST(FaultDrivers, AllocFaultSurfacesAsDeviceFault) {
  const graph::Graph g = graph::complete(12);
  FaultInjector inj(1, FaultRates{1.0, 0.0, 0.0, 0.0});
  core::GpuTriangleOptions opts;
  opts.faults = &inj;
  try {
    core::count_triangles_gpu(g, opts);
    FAIL() << "expected DeviceFault";
  } catch (const DeviceFault& e) {
    EXPECT_EQ(e.site(), FaultSite::kAlloc);
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
}

TEST(FaultDrivers, NullHookIsFaultFree) {
  const graph::Graph g = graph::complete(10);
  core::GpuTriangleOptions opts;
  const auto r = core::count_triangles_gpu(g, opts);
  EXPECT_EQ(r.triangles, core::count_triangles_forward(g));
}

// ------------------------------------------------------------------ runner

TEST(ResilientRunner, FaultFreeMatchesOracle) {
  const graph::Graph g = test_graph();
  const auto report = resilience::run_resilient(g);
  EXPECT_EQ(report.triangles, core::count_triangles_forward(g));
  EXPECT_TRUE(report.exact);
  EXPECT_TRUE(report.certified);
  EXPECT_EQ(report.recovery.faults, 0u);
  EXPECT_EQ(report.recovery.retries, 0u);
  EXPECT_TRUE(report.lost_sms.empty());
}

TEST(ResilientRunner, ExactUnderTenPercentFaults) {
  const graph::Graph g = test_graph();
  const std::uint64_t oracle = core::count_triangles_forward(g);
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    FaultInjector inj(seed, FaultRates::uniform(0.1));
    resilience::RunnerOptions opts;
    opts.faults = &inj;
    const auto report = resilience::run_resilient(g, opts);
    EXPECT_EQ(report.triangles, oracle) << "seed " << seed;
    EXPECT_TRUE(report.exact) << "seed " << seed;
    EXPECT_TRUE(report.certified) << "seed " << seed;
  }
}

TEST(ResilientRunner, AccountingMatchesInjectorPlan) {
  const graph::Graph g = chunked_graph();
  FaultInjector inj(2024, FaultRates::uniform(0.1));
  resilience::RunnerOptions opts;
  opts.device = &tiny_shared_device();  // many chunks -> many draws
  opts.faults = &inj;
  const auto report = resilience::run_resilient(g, opts);
  EXPECT_GT(inj.total_faults(), 0u);

  // Every fault the injector fired must be accounted, by site, in the
  // recovery stats — and nothing else.
  std::array<std::uint64_t, gpusim::kNumFaultSites> plan_by_site{};
  for (const auto& e : inj.events())
    ++plan_by_site[static_cast<std::size_t>(e.site)];
  EXPECT_EQ(report.recovery.by_site, plan_by_site);
  EXPECT_EQ(report.recovery.faults, inj.total_faults());
  EXPECT_EQ(report.device.faults_injected, inj.total_faults());

  // Per-chunk fault counts sum to the total.
  std::uint64_t chunk_faults = 0;
  for (const auto& c : report.chunks) chunk_faults += c.faults;
  EXPECT_EQ(chunk_faults, report.recovery.faults);
}

TEST(ResilientRunner, LogIsByteIdenticalAcrossThreadCounts) {
  const graph::Graph g = chunked_graph();
  auto run = [&](std::size_t threads) {
    FaultInjector inj(555, FaultRates::uniform(0.1));
    resilience::RunnerOptions opts;
    opts.device = &tiny_shared_device();
    opts.faults = &inj;
    opts.exec = threads == 1 ? gpusim::ExecPolicy::serial()
                             : gpusim::ExecPolicy::parallel(threads);
    return resilience::run_resilient(g, opts);
  };
  const auto a = run(1);
  const auto b = run(4);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.triangles, b.triangles);
  EXPECT_EQ(a.recovery.by_site, b.recovery.by_site);
  EXPECT_EQ(a.lost_sms, b.lost_sms);
}

TEST(ResilientRunner, CorruptionIsDetectedAndRecovered) {
  const graph::Graph g = test_graph();
  // Every transfer corrupts: each device attempt fails verification, so
  // every non-empty chunk must exhaust retries and fail over to the CPU.
  FaultInjector inj(8, FaultRates{0.0, 0.0, 0.0, 1.0});
  resilience::RunnerOptions opts;
  opts.faults = &inj;
  opts.retry.max_retries = 1;
  const auto report = resilience::run_resilient(g, opts);
  EXPECT_EQ(report.triangles, core::count_triangles_forward(g));
  EXPECT_TRUE(report.certified);
  EXPECT_GT(report.recovery.corruptions_detected, 0u);
  EXPECT_GT(report.recovery.cpu_failovers, 0u);
}

TEST(ResilientRunner, UnverifiedCorruptionGoesUndetected) {
  const graph::Graph g = test_graph();
  FaultInjector inj(8, FaultRates{0.0, 0.0, 0.0, 1.0});
  resilience::RunnerOptions opts;
  opts.faults = &inj;
  opts.verify = false;
  const auto report = resilience::run_resilient(g, opts);
  // verify=false trusts the device: the corrupted counts land in the
  // total (always perturbed upward) and the run is not certified.
  EXPECT_GT(report.triangles, core::count_triangles_forward(g));
  EXPECT_FALSE(report.certified);
  EXPECT_EQ(report.recovery.corruptions_detected, 0u);
}

TEST(ResilientRunner, StreamFailoverIsExact) {
  const graph::Graph g = test_graph();
  FaultInjector inj(3, FaultRates{0.0, 1.0, 0.0, 0.0});
  resilience::RunnerOptions opts;
  opts.faults = &inj;
  opts.retry.max_retries = 0;
  opts.failover = Failover::kStream;
  opts.stream_batch_tests = 64;  // force many batches
  const auto report = resilience::run_resilient(g, opts);
  EXPECT_EQ(report.triangles, core::count_triangles_forward(g));
  EXPECT_TRUE(report.certified);
  EXPECT_GT(report.recovery.stream_failovers, 0u);
  EXPECT_EQ(report.recovery.cpu_failovers, 0u);
}

TEST(ResilientRunner, FailoverOffGivesUp) {
  const graph::Graph g = test_graph();
  FaultInjector inj(3, FaultRates{0.0, 1.0, 0.0, 0.0});
  resilience::RunnerOptions opts;
  opts.faults = &inj;
  opts.retry.max_retries = 0;
  opts.failover = Failover::kOff;
  const auto report = resilience::run_resilient(g, opts);
  EXPECT_FALSE(report.exact);
  EXPECT_FALSE(report.certified);
  EXPECT_GT(report.recovery.failed_chunks, 0u);
  for (const auto& c : report.chunks) {
    if (c.tests > 0) {
      EXPECT_EQ(c.outcome, resilience::ChunkOutcome::kFailed);
    }
  }
}

TEST(ResilientRunner, SmAbortMarksSmLostAndSchedulesAroundIt) {
  const graph::Graph g = chunked_graph();
  // Aggressive SM aborts: some chunks will exhaust retries, fail over,
  // and their planned SMs must be reported lost; the repaired schedule
  // must cover exactly the surviving machines.
  FaultInjector inj(17, FaultRates{0.0, 0.0, 0.5, 0.0});
  resilience::RunnerOptions opts;
  opts.device = &tiny_shared_device();
  opts.faults = &inj;
  opts.retry.max_retries = 1;
  const auto report = resilience::run_resilient(g, opts);
  EXPECT_EQ(report.triangles, core::count_triangles_forward(g));
  EXPECT_TRUE(report.certified);
  EXPECT_GT(report.recovery.by_site[static_cast<std::size_t>(
                FaultSite::kSmAbort)],
            0u);
  ASSERT_FALSE(report.lost_sms.empty());
  for (const auto sm : report.lost_sms) {
    ASSERT_LT(sm, report.schedule.load.size());
    EXPECT_EQ(report.schedule.load[sm], 0u);
  }
}

TEST(ResilientRunner, RetriesRecoverTransientFaults) {
  const graph::Graph g = chunked_graph();
  // Moderate launch faults with generous retries: most chunks should
  // recover on-device rather than failing over.
  FaultInjector inj(12, FaultRates{0.0, 0.2, 0.0, 0.0});
  resilience::RunnerOptions opts;
  opts.device = &tiny_shared_device();
  opts.faults = &inj;
  opts.retry.max_retries = 8;
  const auto report = resilience::run_resilient(g, opts);
  EXPECT_EQ(report.triangles, core::count_triangles_forward(g));
  EXPECT_TRUE(report.certified);
  EXPECT_GT(report.recovery.retries, 0u);
  EXPECT_GT(report.recovery.backoff_s, 0.0);
  const bool any_retried = std::any_of(
      report.chunks.begin(), report.chunks.end(), [](const auto& c) {
        return c.outcome == resilience::ChunkOutcome::kGpuRetried;
      });
  EXPECT_TRUE(any_retried);
}

TEST(ResilientRunner, BackoffIsBoundedAndMonotone) {
  resilience::RetryPolicy policy;
  double prev = 0.0;
  for (std::uint32_t r = 0; r < 32; ++r) {
    const double b = policy.backoff_s(r);
    EXPECT_GE(b, prev);
    EXPECT_LE(b, policy.max_backoff_s);
    prev = b;
  }
  EXPECT_DOUBLE_EQ(policy.backoff_s(0), policy.base_backoff_s);
  EXPECT_DOUBLE_EQ(policy.backoff_s(31), policy.max_backoff_s);
}

TEST(ResilientRunner, CorpusGraphsStayExactUnderFaults) {
  // Every regression graph in tests/corpus must count exactly under a
  // sustained 10% fault rate at every site (the headline acceptance
  // criterion of DESIGN.md §11).
  const auto files = fuzz::list_repro_files(LGG_CORPUS_DIR);
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    const fuzz::Repro repro = fuzz::read_repro_file(path);
    FaultInjector inj(4242, FaultRates::uniform(0.1));
    resilience::RunnerOptions opts;
    opts.faults = &inj;
    const auto report = resilience::run_resilient(repro.graph, opts);
    EXPECT_EQ(report.triangles, repro.oracle) << path;
    EXPECT_TRUE(report.certified) << path;
  }
}

// ----------------------------------------------------------------- salvage

TEST(Salvage, SmAbortKeepsCompletedWarpsAndRecountsRemainder) {
  const graph::Graph g = chunked_graph();
  const std::uint64_t oracle = core::count_triangles_forward(g);
  FaultInjector inj(17, FaultRates{0.0, 0.0, 0.5, 0.0});
  resilience::RunnerOptions opts;
  opts.device = &tiny_shared_device();
  opts.faults = &inj;  // salvage on (the default)
  const auto report = resilience::run_resilient(g, opts);

  // The certified count equals the fault-free count.
  EXPECT_EQ(report.triangles, oracle);
  EXPECT_TRUE(report.certified);

  // Salvage did real work: warps were kept, and the host recount covered
  // ONLY the lost remainder (kept + recounted == the chunk's tests).
  EXPECT_GT(report.recovery.salvaged_warps, 0u);
  EXPECT_GT(report.recovery.salvaged_tests, 0u);
  EXPECT_GT(report.recovery.recounted_tests, 0u);
  bool any_salvaged = false;
  for (const auto& c : report.chunks) {
    if (c.outcome != resilience::ChunkOutcome::kSalvaged) continue;
    any_salvaged = true;
    EXPECT_GT(c.salvaged_warps, 0u);
    EXPECT_GT(c.salvaged_tests, 0u);
    EXPECT_GT(c.recounted_tests, 0u);
    EXPECT_EQ(c.salvaged_tests + c.recounted_tests, c.tests);
    EXPECT_TRUE(c.certified);
    // Salvage accepts the aborted attempt: no device retry happened.
    EXPECT_EQ(c.attempts, 1u);
  }
  EXPECT_TRUE(any_salvaged);
}

TEST(Salvage, DisabledSalvageStillRecoversExactly) {
  const graph::Graph g = chunked_graph();
  FaultInjector inj(17, FaultRates{0.0, 0.0, 0.5, 0.0});
  resilience::RunnerOptions opts;
  opts.device = &tiny_shared_device();
  opts.faults = &inj;
  opts.salvage = false;
  const auto report = resilience::run_resilient(g, opts);
  EXPECT_EQ(report.triangles, core::count_triangles_forward(g));
  EXPECT_TRUE(report.certified);
  EXPECT_EQ(report.recovery.salvaged_warps, 0u);
  for (const auto& c : report.chunks)
    EXPECT_NE(c.outcome, resilience::ChunkOutcome::kSalvaged);
}

TEST(FaultInjector, StateRoundTripContinuesIdentically) {
  const auto drive = [](FaultInjector& inj, int iters) {
    const gpusim::KernelConfig config{};
    for (int i = 0; i < iters; ++i) {
      inj.on_alloc(64);
      inj.on_launch(config);
      inj.on_sm_abort(config, static_cast<std::uint32_t>(i % 4));
      inj.on_transfer(4096);
    }
  };
  FaultInjector full(42, FaultRates::uniform(0.3));
  drive(full, 200);

  FaultInjector first(42, FaultRates::uniform(0.3));
  drive(first, 120);
  const FaultInjector::State st = first.state();

  FaultInjector second(42, FaultRates::uniform(0.3));
  second.restore_state(st);
  drive(second, 80);

  EXPECT_EQ(second.events(), full.events());
  for (std::size_t s = 0; s < gpusim::kNumFaultSites; ++s) {
    const auto site = static_cast<FaultSite>(s);
    EXPECT_EQ(second.draws(site), full.draws(site));
    EXPECT_EQ(second.count(site), full.count(site));
  }
}

// ------------------------------------------------------- checkpoint/restart

namespace checkpointing {

struct Kill {};  // thrown from on_checkpoint to simulate a crash

struct Artifacts {
  std::string report, log, trace, spans, prom;

  friend bool operator==(const Artifacts&, const Artifacts&) = default;
};

Artifacts artifacts_of(const resilience::RunnerReport& r,
                       const obs::Session& sess) {
  std::ostringstream os;
  os << r;
  return Artifacts{os.str(), r.log, obs::chrome_trace_json(sess.tracer),
                   obs::span_tree_text(sess.tracer),
                   sess.metrics.prometheus_text()};
}

resilience::RunnerOptions checkpoint_opts(FaultInjector& inj,
                                          obs::Session& sess,
                                          const std::string& path) {
  resilience::RunnerOptions opts;
  opts.device = &tiny_shared_device();
  opts.faults = &inj;
  opts.obs = &sess;
  opts.checkpoint_path = path;
  return opts;
}

}  // namespace checkpointing

TEST(CheckpointResume, ByteIdenticalAfterKillAtAnyThreadCount) {
  using checkpointing::Kill;
  const graph::Graph g = chunked_graph();
  const std::string dir = ::testing::TempDir();

  // Uninterrupted reference, serial policy, checkpointing ON (the cadence
  // leaves spans and counters that a resumed run must reproduce).
  obs::Session ref_sess;
  FaultInjector ref_inj(99, FaultRates::uniform(0.1));
  const auto ref_report = resilience::run_resilient(
      g, checkpointing::checkpoint_opts(ref_inj, ref_sess,
                                        dir + "lggckpt_ref.ckpt"));
  const auto ref = checkpointing::artifacts_of(ref_report, ref_sess);
  ASSERT_GE(ref_report.chunks.size(), 4u);  // the kill point must be mid-run

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const std::string path =
        dir + "lggckpt_t" + std::to_string(threads) + ".ckpt";
    {
      // The victim: dies right after the checkpoint for chunk 1 lands.
      obs::Session sess;
      FaultInjector inj(99, FaultRates::uniform(0.1));
      auto opts = checkpointing::checkpoint_opts(inj, sess, path);
      opts.on_checkpoint = [](std::uint32_t ci) {
        if (ci == 1) throw Kill{};
      };
      EXPECT_THROW(resilience::run_resilient(g, opts), Kill);
    }
    // A fresh "process": new session, new injector — everything restored
    // from the file.  The resumed policy may differ from the
    // checkpointing one (the fingerprint excludes ExecPolicy).
    obs::Session sess;
    FaultInjector inj(99, FaultRates::uniform(0.1));
    auto opts = checkpointing::checkpoint_opts(inj, sess, path);
    opts.exec = threads == 1 ? gpusim::ExecPolicy::serial()
                             : gpusim::ExecPolicy::parallel(threads);
    const auto report = resilience::resume_resilient(g, opts);
    EXPECT_EQ(checkpointing::artifacts_of(report, sess), ref)
        << "threads " << threads;
    EXPECT_EQ(report.triangles, ref_report.triangles);
    // The checkpoint is removed once the run completes.
    EXPECT_FALSE(std::ifstream(path).good()) << "threads " << threads;
  }
}

TEST(CheckpointResume, TamperedOrTruncatedCheckpointIsTypedThenColdRunWorks) {
  using checkpointing::Kill;
  const graph::Graph g = chunked_graph();
  const std::string path = ::testing::TempDir() + "lggckpt_tamper.ckpt";
  {
    obs::Session sess;
    FaultInjector inj(99, FaultRates::uniform(0.1));
    auto opts = checkpointing::checkpoint_opts(inj, sess, path);
    opts.on_checkpoint = [](std::uint32_t ci) {
      if (ci == 1) throw Kill{};
    };
    EXPECT_THROW(resilience::run_resilient(g, opts), Kill);
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 64u);

  const auto expect_corrupt = [&](const std::string& mutated) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    obs::Session sess;
    FaultInjector inj(99, FaultRates::uniform(0.1));
    const auto opts = checkpointing::checkpoint_opts(inj, sess, path);
    try {
      (void)resilience::resume_resilient(g, opts);
      FAIL() << "tampered checkpoint was accepted";
    } catch (const resilience::CheckpointError& e) {
      EXPECT_EQ(e.kind(), resilience::CheckpointError::Kind::kCorrupt);
    }
  };

  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x01;  // single-bit tamper
  expect_corrupt(flipped);
  expect_corrupt(bytes.substr(0, bytes.size() / 2));  // truncation

  // The caller-side contract: a rejected checkpoint falls back to a cold
  // run that completes exactly.
  obs::Session sess;
  FaultInjector inj(99, FaultRates::uniform(0.1));
  auto opts = checkpointing::checkpoint_opts(inj, sess, path);
  opts.checkpoint_path.clear();  // cold: no checkpointing
  const auto report = resilience::run_resilient(g, opts);
  EXPECT_EQ(report.triangles, core::count_triangles_forward(g));
  EXPECT_TRUE(report.certified);
  std::remove(path.c_str());
}

TEST(CheckpointResume, MissingAndIncompatibleCheckpointsAreTyped) {
  using checkpointing::Kill;
  const graph::Graph g = chunked_graph();
  const std::string dir = ::testing::TempDir();

  const auto expect_kind = [&](const resilience::RunnerOptions& opts,
                               const graph::Graph& graph,
                               resilience::CheckpointError::Kind want) {
    try {
      (void)resilience::resume_resilient(graph, opts);
      FAIL() << "expected CheckpointError "
             << resilience::checkpoint_kind_name(want);
    } catch (const resilience::CheckpointError& e) {
      EXPECT_EQ(e.kind(), want)
          << resilience::checkpoint_kind_name(e.kind()) << ": " << e.what();
    }
  };

  // kMissing: no file at the path.
  {
    obs::Session sess;
    FaultInjector inj(99, FaultRates::uniform(0.1));
    const auto opts = checkpointing::checkpoint_opts(
        inj, sess, dir + "lggckpt_does_not_exist.ckpt");
    expect_kind(opts, g, resilience::CheckpointError::Kind::kMissing);
  }

  // Take a real checkpoint to misuse below.
  const std::string path = dir + "lggckpt_mismatch.ckpt";
  {
    obs::Session sess;
    FaultInjector inj(99, FaultRates::uniform(0.1));
    auto opts = checkpointing::checkpoint_opts(inj, sess, path);
    opts.on_checkpoint = [](std::uint32_t ci) {
      if (ci == 1) throw Kill{};
    };
    EXPECT_THROW(resilience::run_resilient(g, opts), Kill);
  }

  // kGraphMismatch: same options, different input graph.
  {
    obs::Session sess;
    FaultInjector inj(99, FaultRates::uniform(0.1));
    const auto opts = checkpointing::checkpoint_opts(inj, sess, path);
    expect_kind(opts, test_graph(),
                resilience::CheckpointError::Kind::kGraphMismatch);
  }

  // kPlanMismatch: same graph, semantically different options.
  {
    obs::Session sess;
    FaultInjector inj(99, FaultRates::uniform(0.1));
    auto opts = checkpointing::checkpoint_opts(inj, sess, path);
    opts.threads_per_block = 64;
    expect_kind(opts, g, resilience::CheckpointError::Kind::kPlanMismatch);
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------- fault campaign

TEST(FaultCampaign, TwoHundredIterationsStayExact) {
  // 200 sampled graphs through the resilient runner at a 10% fault rate:
  // zero findings means recovery reproduced the oracle count every time.
  fuzz::EngineOptions opts;
  opts.master_seed = 77;
  opts.max_iterations = 200;
  opts.limits.max_vertices = 24;
  opts.shrink = false;
  opts.policies = {gpusim::ExecPolicy::serial()};
  opts.fault_rate = 0.1;
  opts.fault_seed = 7;
  // Only the fault path: the cross-product paths have their own suites.
  opts.paths = {fuzz::resilient_fault_path(0.1, 7, 3, Failover::kCpu)};
  const auto result = fuzz::run_campaign(opts);
  EXPECT_EQ(result.iterations, 200u);
  EXPECT_EQ(result.findings_count, 0u) << result.log;
}

TEST(FaultCampaign, LogIsByteIdenticalAcrossThreadCounts) {
  auto campaign = [](std::size_t threads) {
    fuzz::EngineOptions opts;
    opts.master_seed = 13;
    opts.max_iterations = 40;
    opts.limits.max_vertices = 20;
    opts.shrink = false;
    opts.policies = {gpusim::ExecPolicy::parallel(threads)};
    opts.fault_rate = 0.15;
    opts.fault_seed = 3;
    opts.paths = {fuzz::resilient_fault_path(0.15, 3, 3, Failover::kCpu)};
    return fuzz::run_campaign(opts);
  };
  const auto a = campaign(1);
  const auto b = campaign(4);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.findings_count, b.findings_count);
}

}  // namespace

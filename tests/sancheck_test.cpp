// lgg::sancheck — hazard classification on seeded-bug kernels, hazard
// freedom of every shipping kernel under SancheckMode::kStrict, report
// determinism across host thread counts, and the static footprint lint
// (positive proofs and refutations).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/als_plan.hpp"
#include "core/bfs_gpu.hpp"
#include "core/hybrid.hpp"
#include "core/intersect_gpu.hpp"
#include "core/subgraph_gpu.hpp"
#include "core/triangle_cpu.hpp"
#include "core/triangle_gpu.hpp"
#include "graph/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/memory.hpp"
#include "sancheck/footprint.hpp"
#include "sancheck/sancheck.hpp"
#include "util/error.hpp"

namespace lgg::sancheck {
namespace {

using gpusim::Buffer;
using gpusim::DeviceMemory;
using gpusim::ExecPolicy;
using gpusim::HazardClass;
using gpusim::HazardReport;
using gpusim::KernelConfig;
using gpusim::KernelFn;
using gpusim::Simulator;
using gpusim::ThreadCtx;
using gpusim::ThreadRecorder;

/// Run `kernel` under a kReport analyzer and return the hazards.
HazardReport analyze(const KernelFn& kernel, const KernelConfig& config,
                     DeviceMemory& mem, std::vector<Buffer> staged = {},
                     const ExecPolicy& policy = ExecPolicy::serial(),
                     std::uint32_t stride = 1) {
  const Simulator sim(mem.spec());
  SancheckConfig sc;
  sc.mode = SancheckMode::kReport;
  sc.staged = std::move(staged);
  const TapeAnalyzer analyzer(std::move(sc), mem);
  return sim.run(kernel, config, stride, policy, &analyzer).hazards;
}

// ---------------------------------------------------------------------------
// Seeded-bug kernels: each hazard class must be flagged, and only it.

TEST(TapeAnalyzer, FlagsStraddlingReadAsOutOfBounds) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer buf = mem.alloc(62);  // deliberately not a word multiple
  const HazardReport r = analyze(
      [&](const ThreadCtx&, ThreadRecorder& rec) {
        rec.global_read(buf, 60, 4);  // last 2 bytes spill past the end
      },
      {"oob", 1, 32}, mem, {buf});
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.count(HazardClass::kOutOfBounds), 1u);
  EXPECT_EQ(r.total, r.count(HazardClass::kOutOfBounds));
}

TEST(TapeAnalyzer, FlagsReadPastCapacityAsOutOfBounds) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer rogue{mem.capacity() - 4, 64};  // fabricated, not allocated
  const HazardReport r = analyze(
      [&](const ThreadCtx&, ThreadRecorder& rec) {
        rec.global_read(rogue, 4, 4);  // word starting AT device capacity
      },
      {"capacity", 1, 32}, mem);
  EXPECT_EQ(r.count(HazardClass::kOutOfBounds), 1u);
  EXPECT_EQ(r.total, 1u);
}

TEST(TapeAnalyzer, ClassifiesUseBeforeAlloc) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer buf = mem.alloc(64);
  const Buffer rogue{buf.base + (1ull << 20), 64};  // in capacity, never handed out
  const HazardReport r = analyze(
      [&](const ThreadCtx&, ThreadRecorder& rec) {
        rec.global_read(rogue, 0, 4);
      },
      {"uba", 1, 32}, mem, {buf});
  EXPECT_EQ(r.count(HazardClass::kUseBeforeAlloc), 1u);
  EXPECT_EQ(r.total, 1u);
}

TEST(TapeAnalyzer, ClassifiesUseAfterReset) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer stale = mem.alloc(4096);
  mem.reset();
  const Buffer fresh = mem.alloc(64);  // overlaps the head of `stale`
  const HazardReport r = analyze(
      [&](const ThreadCtx&, ThreadRecorder& rec) {
        // Beyond `fresh`, so only the retired allocation covers it.
        rec.global_read(stale, 2048, 4);
      },
      {"uar", 1, 32}, mem, {fresh});
  EXPECT_EQ(r.count(HazardClass::kUseAfterReset), 1u);
  EXPECT_EQ(r.total, 1u);
}

TEST(TapeAnalyzer, FlagsUninitializedRead) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer staged = mem.alloc(256);
  const Buffer scratch = mem.alloc(256);  // allocated but never staged
  const HazardReport r = analyze(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        if (ctx.thread != 0) return;
        rec.global_read(staged, 16, 4);   // staged: fine
        rec.global_read(scratch, 16, 4);  // neither staged nor written
      },
      {"uninit", 1, 32}, mem, {staged});
  EXPECT_EQ(r.count(HazardClass::kUninitRead), 1u);
  EXPECT_EQ(r.total, 1u);
}

TEST(TapeAnalyzer, WriteAnywhereInLaunchInitialises) {
  // Shadow model is order-favorable: a cell written by ANY thread of the
  // launch is initialised for every reader (no false positives from the
  // untracked intra-launch schedule).
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer scratch = mem.alloc(256);
  const HazardReport r = analyze(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        if (ctx.thread == 31)
          rec.global_write(scratch, 16, 4);
        else
          rec.global_read(scratch, 16, 4);
      },
      {"wr", 1, 32}, mem);
  EXPECT_TRUE(r.clean()) << r;
}

TEST(TapeAnalyzer, FlagsSharedMemoryRace) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const HazardReport r = analyze(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        if (ctx.thread == 0)
          rec.shared_write(0);
        else
          rec.shared_read(0);  // same word, same epoch: race
      },
      {"race", 1, 64}, mem);
  EXPECT_GE(r.count(HazardClass::kSharedRace), 1u);
  EXPECT_EQ(r.total, r.count(HazardClass::kSharedRace));
}

TEST(TapeAnalyzer, SyncSeparatesSharedPhases) {
  // The same write-then-read pattern is clean once a sync (simulated
  // __syncthreads) splits the epochs — the hybrid kernel's staging shape.
  DeviceMemory mem(gpusim::tesla_c1060());
  const HazardReport r = analyze(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        rec.shared_write(ctx.thread * 4ull);
        rec.sync();
        rec.shared_read(0);
      },
      {"sync", 1, 64}, mem);
  EXPECT_TRUE(r.clean()) << r;
}

TEST(TapeAnalyzer, SharedStateIsPerBlock) {
  // One writer per block on the same shared address: blocks have private
  // shared memories, so this cannot race.
  DeviceMemory mem(gpusim::tesla_c1060());
  const HazardReport r = analyze(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        if (ctx.thread == 0) rec.shared_write(0);
      },
      {"blocks", 4, 32}, mem);
  EXPECT_TRUE(r.clean()) << r;
}

TEST(TapeAnalyzer, FlagsCrossWarpWriteConflict) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer out = mem.alloc(256);
  const HazardReport r = analyze(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        if (ctx.lane == 0) rec.global_write(out, 0, 4);  // both warps
      },
      {"conflict", 1, 64}, mem);
  EXPECT_EQ(r.count(HazardClass::kGlobalWriteConflict), 1u);
  EXPECT_EQ(r.total, 1u);
}

TEST(TapeAnalyzer, SameWarpWritesDoNotConflict) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer out = mem.alloc(256);
  const HazardReport r = analyze(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        rec.global_write(out, ctx.warp * 4ull, 4);  // one word per warp
      },
      {"per-warp", 1, 96}, mem);
  EXPECT_TRUE(r.clean()) << r;
}

TEST(TapeAnalyzer, AtomicsAreExemptFromWriteConflicts) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer out = mem.alloc(256);
  const HazardReport atomic_only = analyze(
      [&](const ThreadCtx&, ThreadRecorder& rec) {
        rec.global_atomic(out, 0, 4);  // every thread, every warp
      },
      {"atomics", 2, 64}, mem);
  EXPECT_TRUE(atomic_only.clean()) << atomic_only;

  // ...but a PLAIN write still conflicts with another warp's atomic.
  const HazardReport mixed = analyze(
      [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
        if (ctx.global_warp == 0 && ctx.lane == 0)
          rec.global_write(out, 0, 4);
        else if (ctx.lane == 0)
          rec.global_atomic(out, 0, 4);
      },
      {"mixed", 1, 64}, mem);
  EXPECT_EQ(mixed.count(HazardClass::kGlobalWriteConflict), 1u);
}

TEST(TapeAnalyzer, HazardSitesAreDedupedPerLaunch) {
  // 128 threads x 4 repeats over one bad cell is ONE hazard site.
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer scratch = mem.alloc(256);
  const HazardReport r = analyze(
      [&](const ThreadCtx&, ThreadRecorder& rec) {
        for (int i = 0; i < 4; ++i) rec.global_read(scratch, 8, 4);
      },
      {"dedup", 1, 128}, mem);
  EXPECT_EQ(r.count(HazardClass::kUninitRead), 1u);
  EXPECT_EQ(r.total, 1u);
}

TEST(TapeAnalyzer, StrictModeThrowsOnFirstHazard) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer scratch = mem.alloc(64);
  const Simulator sim(mem.spec());
  SancheckConfig sc;
  sc.mode = SancheckMode::kStrict;
  const TapeAnalyzer analyzer(std::move(sc), mem);
  const KernelFn bad = [&](const ThreadCtx&, ThreadRecorder& rec) {
    rec.global_read(scratch, 0, 4);  // uninitialised
  };
  EXPECT_THROW(sim.run(bad, {"strict", 1, 32}, 1, ExecPolicy::serial(),
                       &analyzer),
               lgg::Error);
  // Same kernel, clean when the buffer is staged.
  SancheckConfig ok;
  ok.mode = SancheckMode::kStrict;
  ok.staged = {scratch};
  const TapeAnalyzer lenient(std::move(ok), mem);
  EXPECT_NO_THROW(sim.run(bad, {"strict", 1, 32}, 1, ExecPolicy::serial(),
                          &lenient));
}

// ---------------------------------------------------------------------------
// Determinism: the HazardReport must be bit-identical across host thread
// counts and executor policies (same contract as the KernelReport).

void expect_hazards_identical(const HazardReport& a, const HazardReport& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.by_class, b.by_class);
  ASSERT_EQ(a.hazards.size(), b.hazards.size());
  for (std::size_t i = 0; i < a.hazards.size(); ++i)
    EXPECT_EQ(a.hazards[i], b.hazards[i]) << "hazard " << i;
}

TEST(TapeAnalyzer, ReportBitIdenticalAcrossThreadCounts) {
  DeviceMemory mem(gpusim::tesla_c1060());
  const Buffer staged = mem.alloc(1 << 16);
  const Buffer scratch = mem.alloc(1 << 16);
  // A hazard-rich kernel: scattered uninitialised reads, cross-warp write
  // conflicts on a shared cell, and an intra-block shared race.
  const KernelFn kernel = [&](const ThreadCtx& ctx, ThreadRecorder& rec) {
    const std::uint64_t salt = ctx.global_id * 2654435761u;
    rec.global_read(staged, salt % ((1 << 16) - 4) / 4 * 4, 4);
    if (ctx.global_id % 3 == 0)
      rec.global_read(scratch, salt % ((1 << 16) - 4) / 4 * 4, 4);
    if (ctx.lane == 1) rec.global_write(scratch, 0, 4);
    if (ctx.thread < 2) rec.shared_write(0);
    rec.sync();
    rec.shared_read(4 * (ctx.thread % 16));
  };
  for (const std::uint32_t stride : {1u, 3u}) {
    const KernelConfig cfg{"det", 5, 96};
    const HazardReport serial = analyze(kernel, cfg, mem, {staged},
                                        ExecPolicy::serial(), stride);
    EXPECT_FALSE(serial.clean());
    for (const std::size_t threads : {1u, 2u, 5u, 13u}) {
      SCOPED_TRACE("stride" + std::to_string(stride) + "/threads" +
                   std::to_string(threads));
      const HazardReport parallel = analyze(
          kernel, cfg, mem, {staged}, ExecPolicy::parallel(threads), stride);
      expect_hazards_identical(serial, parallel);
    }
  }
}

// ---------------------------------------------------------------------------
// Every shipping kernel must be hazard-free under kStrict, serial and
// parallel, full and sampled.

TEST(StrictShipping, TriangleKernelsAllLayoutsCleanUnderStrict) {
  const graph::Graph g = graph::layered_random(220, 40, 0.10, 0.05, 11);
  const std::uint64_t expected = core::count_triangles_forward(g);
  for (const auto layout :
       {core::GpuLayout::kNaive, core::GpuLayout::kCoalesced,
        core::GpuLayout::kCoalescedAntiCamping}) {
    for (const bool parallel : {false, true}) {
      for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{5000}}) {
        SCOPED_TRACE(std::string(core::gpu_layout_name(layout)) +
                     (parallel ? "/parallel" : "/serial") + "/budget" +
                     std::to_string(budget));
        core::GpuTriangleOptions opts;
        opts.layout = layout;
        opts.sancheck = SancheckMode::kStrict;
        opts.max_simulated_tests = budget;  // 0 = exact, else sampled
        opts.exec = parallel ? gpusim::ExecPolicy::parallel(3)
                             : gpusim::ExecPolicy::serial();
        const auto r = core::count_triangles_gpu(g, opts);
        EXPECT_TRUE(r.kernel.hazards.clean());
        if (r.exact) {
          EXPECT_EQ(r.triangles, expected);
        }
      }
    }
  }
}

TEST(StrictShipping, IntersectKernelCleanUnderStrict) {
  const graph::Graph g = graph::erdos_renyi(150, 0.08, 5);
  for (const bool parallel : {false, true}) {
    core::GpuIntersectOptions opts;
    opts.sancheck = SancheckMode::kStrict;
    opts.exec = parallel ? gpusim::ExecPolicy::parallel(2)
                         : gpusim::ExecPolicy::serial();
    const auto r = core::count_triangles_gpu_intersect(g, opts);
    EXPECT_TRUE(r.kernel.hazards.clean());
    EXPECT_EQ(r.triangles, core::count_triangles_forward(g));
  }
}

TEST(StrictShipping, SubgraphKernelsCleanUnderStrict) {
  const graph::Graph g = graph::erdos_renyi(90, 0.10, 7);
  core::GpuKCountOptions opts;
  opts.sancheck = SancheckMode::kStrict;
  EXPECT_NO_THROW(core::count_kcliques_gpu(g, 4, opts));
  EXPECT_NO_THROW(core::count_connected_subgraphs_gpu(g, 3, opts));
  EXPECT_NO_THROW(core::list_triangles_gpu(g, opts));
  opts.exec = gpusim::ExecPolicy::serial();
  opts.max_simulated_tests = 3000;  // sampled path
  EXPECT_NO_THROW(core::count_kcliques_gpu(g, 4, opts));
}

TEST(StrictShipping, BfsKernelCleanUnderStrict) {
  // ER graphs guarantee same-level vertices sharing unreached neighbours,
  // so the frontier's benign write race is actually exercised — it must
  // pass strict because the update is recorded as an atomic.
  const graph::Graph g = graph::erdos_renyi(300, 0.03, 9);
  for (const bool parallel : {false, true}) {
    core::GpuBfsOptions opts;
    opts.sancheck = SancheckMode::kStrict;
    opts.exec = parallel ? gpusim::ExecPolicy::parallel(4)
                         : gpusim::ExecPolicy::serial();
    const auto r = core::bfs_gpu(g, 0, opts);
    EXPECT_TRUE(r.hazards.clean());
    EXPECT_EQ(r.tree.level, graph::bfs(g, 0).level);
  }
}

TEST(StrictShipping, HybridCleanUnderStrictForBothResidencies) {
  // Mixed shared/global chunks (the hybrid_test community-graph shape):
  // shared chunks exercise the staging + sync + probe epochs, global
  // chunks the staged-matrix reads.
  const graph::Graph wide = graph::layered_random(1800, 300, 0.03, 0.015, 9);
  const graph::Graph g =
      graph::disjoint_union(wide, graph::complete(20));
  core::HybridOptions opts;
  opts.sancheck = SancheckMode::kStrict;
  opts.max_simulated_tests_per_chunk = 20000;  // sampled chunks
  const auto r = core::count_triangles_hybrid(g, opts);
  EXPECT_GT(r.shared_chunks, 0u);
  EXPECT_GT(r.global_chunks, 0u);
  EXPECT_TRUE(r.hazards.clean());

  core::HybridOptions exact;
  exact.sancheck = SancheckMode::kStrict;
  exact.exec = gpusim::ExecPolicy::serial();
  const graph::Graph small = graph::erdos_renyi(70, 0.12, 3);
  const auto rs = core::count_triangles_hybrid(small, exact);
  EXPECT_TRUE(rs.exact);
  EXPECT_EQ(rs.triangles, core::count_triangles_forward(small));
}

// ---------------------------------------------------------------------------
// Static footprint lint.

TEST(FootprintLint, ProvesShippingLayoutsClean) {
  const graph::Graph g = graph::layered_random(300, 60, 0.08, 0.04, 13);
  for (const auto layout :
       {core::GpuLayout::kNaive, core::GpuLayout::kCoalesced,
        core::GpuLayout::kCoalescedAntiCamping}) {
    SCOPED_TRACE(core::gpu_layout_name(layout));
    core::GpuTriangleOptions opts;
    opts.layout = layout;
    const FootprintSpec spec = core::als_footprint_spec(g, opts);
    EXPECT_GT(spec.total_tests, 0u);
    EXPECT_GT(spec.workers, 0u);
    const FootprintReport r = lint_footprint(spec);
    EXPECT_TRUE(r.clean()) << r;
  }
}

TEST(FootprintLint, RefutesShrunkenBlock) {
  const graph::Graph g = graph::erdos_renyi(120, 0.08, 17);
  core::GpuTriangleOptions opts;
  opts.layout = core::GpuLayout::kCoalescedAntiCamping;
  FootprintSpec spec = core::als_footprint_spec(g, opts);
  // Find the block backing a non-empty job and shave a row off it.
  for (const FootprintJob& job : spec.jobs) {
    if (job.tests == 0) continue;
    spec.blocks[job.block].bytes -= spec.blocks[job.block].stride;
    break;
  }
  const FootprintReport r = lint_footprint(spec);
  EXPECT_FALSE(r.contained);
  EXPECT_TRUE(r.plan_consistent);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings.front().cls, HazardClass::kFootprintEscape);
}

TEST(FootprintLint, RefutesInconsistentPlan) {
  const graph::Graph g = graph::erdos_renyi(120, 0.08, 17);
  FootprintSpec spec = core::als_footprint_spec(g, {});
  for (FootprintJob& job : spec.jobs) {
    if (job.tests == 0) continue;
    ++job.tests;  // breaks the hockey-stick formula AND the tiling
    break;
  }
  const FootprintReport r = lint_footprint(spec);
  EXPECT_FALSE(r.plan_consistent);
}

TEST(FootprintLint, RefutesIndexBoundBelowJobSize) {
  const graph::Graph g = graph::erdos_renyi(120, 0.08, 17);
  FootprintSpec spec = core::als_footprint_spec(g, {});
  for (FootprintJob& job : spec.jobs) {
    if (job.tests == 0) continue;
    job.index_bound = job.s - 1;
    break;
  }
  EXPECT_FALSE(lint_footprint(spec).plan_consistent);
}

TEST(FootprintLint, RefutesOverlappingOutputSlots) {
  const graph::Graph g = graph::erdos_renyi(120, 0.08, 17);
  FootprintSpec spec = core::als_footprint_spec(g, {});
  spec.warp_slot.resize(spec.workers);
  for (std::uint64_t w = 0; w < spec.workers; ++w) spec.warp_slot[w] = w;
  EXPECT_TRUE(lint_footprint(spec).slots_disjoint);
  spec.warp_slot.back() = 0;  // collide with warp 0
  const FootprintReport r = lint_footprint(spec);
  EXPECT_FALSE(r.slots_disjoint);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings.back().cls, HazardClass::kSlotOverlap);
}

TEST(FootprintLint, EmptyGraphIsVacuouslyClean) {
  const graph::Graph g(5);  // no edges: zero tests everywhere
  const FootprintSpec spec = core::als_footprint_spec(g, {});
  EXPECT_EQ(spec.total_tests, 0u);
  EXPECT_TRUE(lint_footprint(spec).clean());
}

}  // namespace
}  // namespace lgg::sancheck

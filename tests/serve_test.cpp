// Serving-layer contract (DESIGN.md §15): concurrent submission is
// byte-identical to serial, the result cache is exact-match-only and
// eviction-transparent, batching merges same-graph passes without
// changing per-query results, admission and fairness are deterministic,
// and cache hits bypass the device entirely.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/hybrid.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/runner.hpp"
#include "serve/cache.hpp"
#include "serve/catalog.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "util/prng.hpp"

namespace lgg {
namespace {

/// The mixed 200-request script over three resident graphs the stress
/// and determinism tests share.  Pure function of nothing — every call
/// builds the same requests with ids 0..n-1.
std::vector<serve::Request> mixed_script() {
  const std::vector<std::string> graphs = {"g0", "g1", "g2"};
  const std::vector<std::string> tenants = {"alice", "bob", "carol"};
  std::vector<serve::Request> reqs;
  SplitMix64 rng(20130520);
  for (std::uint64_t id = 0; id < 200; ++id) {
    serve::Request r;
    r.id = id;
    r.tenant = tenants[rng.next() % tenants.size()];
    r.graph = graphs[rng.next() % graphs.size()];
    switch (rng.next() % 6) {
      case 0:
        r.kind = serve::QueryKind::kTriangles;
        break;
      case 1:
        r.kind = serve::QueryKind::kKClique;
        r.k = 3 + static_cast<std::uint32_t>(rng.next() % 2);
        break;
      case 2:
        r.kind = serve::QueryKind::kDoulion;
        r.p = 0.5;
        r.seed = rng.next() % 4;
        break;
      case 3:
        r.kind = serve::QueryKind::kWedges;
        r.samples = 100 + rng.next() % 100;
        r.seed = rng.next() % 4;
        break;
      case 4:
        r.kind = serve::QueryKind::kBfs;
        r.vertex = static_cast<graph::Vertex>(rng.next() % 40);
        break;
      default:
        r.kind = serve::QueryKind::kCc;
        r.vertex = static_cast<graph::Vertex>(rng.next() % 40);
        break;
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

serve::Catalog make_catalog(obs::Session* obs = nullptr) {
  serve::CatalogOptions copts;
  copts.obs = obs;
  serve::Catalog catalog(copts);
  catalog.add("g0", graph::gnm(40, 120, 7));
  catalog.add("g1", graph::gnm(36, 90, 9));
  catalog.add("g2", graph::gnm(44, 140, 11));
  return catalog;
}

std::string render(const std::vector<serve::Response>& responses) {
  std::string out;
  for (const auto& r : responses) out += r.line() + "\n";
  return out;
}

/// Serial reference: submit the whole script from this thread, drain.
std::pair<std::string, std::string> serial_run(
    const serve::ServeOptions& sopts) {
  serve::Catalog catalog = make_catalog();
  serve::Service service(catalog, sopts);
  for (auto& r : mixed_script()) service.submit(std::move(r));
  const std::string responses = render(service.drain());
  return {responses, service.log()};
}

TEST(ServeStress, ConcurrentSubmissionMatchesSerial) {
  serve::ServeOptions sopts;  // batching + cache on (the defaults)
  const auto [want_responses, want_log] = serial_run(sopts);
  EXPECT_FALSE(want_responses.empty());

  for (const std::size_t n_clients : {2, 4, 8}) {
    serve::Catalog catalog = make_catalog();
    serve::Service service(catalog, sopts);
    const std::vector<serve::Request> script = mixed_script();
    std::vector<std::thread> clients;
    clients.reserve(n_clients);
    for (std::size_t c = 0; c < n_clients; ++c) {
      clients.emplace_back([&service, &script, c, n_clients] {
        // Client c submits the c-th stripe, so submissions interleave.
        for (std::size_t i = c; i < script.size(); i += n_clients)
          service.submit(script[i]);
      });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(render(service.drain()), want_responses)
        << n_clients << " clients";
    EXPECT_EQ(service.log(), want_log) << n_clients << " clients";
  }
}

TEST(ServeStress, RepeatedDrainsHitTheCache) {
  serve::ServeOptions sopts;
  serve::Catalog catalog = make_catalog();
  serve::Service service(catalog, sopts);
  for (auto& r : mixed_script()) service.submit(std::move(r));
  const std::string first = render(service.drain());

  // Same script again (fresh ids): responses identical, all hits.
  for (auto& r : mixed_script()) {
    r.id += 1000;
    service.submit(std::move(r));
  }
  std::string second = render(service.drain());
  // Only the ids differ; normalise them away line by line.
  auto strip_id = [](const std::string& text) {
    std::string out;
    for (std::size_t pos = 0; pos < text.size();) {
      const std::size_t eol = text.find('\n', pos);
      const std::string line = text.substr(pos, eol - pos);
      out += line.substr(line.find(' ') + 1) + "\n";
      pos = eol + 1;
    }
    return out;
  };
  EXPECT_EQ(strip_id(second), strip_id(first));
}

TEST(ServeCache, HitsRequireExactTripleMatch) {
  serve::ResultCache cache(16);
  const serve::CacheKey key{0x1234, "doulion p=0.5 seed=7", 7};
  cache.insert(key, "estimate=42");
  EXPECT_EQ(cache.lookup(key), "estimate=42");
  // Any component off by one misses.
  EXPECT_FALSE(cache.lookup({0x1235, key.canonical, key.seed}).has_value());
  EXPECT_FALSE(cache.lookup({key.digest, "doulion p=0.5 seed=8", 8})
                   .has_value());
  EXPECT_FALSE(cache.lookup({key.digest, key.canonical, 8}).has_value());
}

TEST(ServeCache, SeedsNeverAlias) {
  // Two estimate queries differing only in seed must never share a
  // cache entry — and their canonical forms must differ.
  serve::Request a;
  a.kind = serve::QueryKind::kWedges;
  a.samples = 100;
  a.seed = 1;
  serve::Request b = a;
  b.seed = 2;
  EXPECT_NE(serve::canonical_query(a), serve::canonical_query(b));

  serve::ResultCache cache(16);
  cache.insert({9, serve::canonical_query(a), a.seed}, "estimate=1");
  cache.insert({9, serve::canonical_query(b), b.seed}, "estimate=2");
  EXPECT_EQ(cache.lookup({9, serve::canonical_query(a), a.seed}),
            "estimate=1");
  EXPECT_EQ(cache.lookup({9, serve::canonical_query(b), b.seed}),
            "estimate=2");
}

TEST(ServeCache, RandomizedEvictionNeverChangesResponses) {
  // Reference: caching disabled entirely.
  serve::ServeOptions uncached;
  uncached.cache_capacity = 0;
  const auto [want, _] = serial_run(uncached);

  // Any capacity from 1..16 (plenty of forced evictions at 200 requests)
  // must produce byte-identical responses.
  for (std::size_t cap = 1; cap <= 16; ++cap) {
    serve::ServeOptions sopts;
    sopts.cache_capacity = cap;
    serve::Catalog catalog = make_catalog();
    serve::Service service(catalog, sopts);
    for (auto& r : mixed_script()) service.submit(std::move(r));
    EXPECT_EQ(render(service.drain()), want) << "capacity " << cap;
  }
}

TEST(ServeCache, EvictionEvictsLeastRecentlyUsed) {
  serve::ResultCache cache(2);
  cache.insert({1, "a", 0}, "A");
  cache.insert({2, "b", 0}, "B");
  EXPECT_TRUE(cache.lookup({1, "a", 0}).has_value());  // touch A
  cache.insert({3, "c", 0}, "C");                      // evicts B
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup({1, "a", 0}).has_value());
  EXPECT_FALSE(cache.lookup({2, "b", 0}).has_value());
  EXPECT_TRUE(cache.lookup({3, "c", 0}).has_value());
}

TEST(ServeBatching, MergesSameGraphPassesWithoutChangingResults) {
  obs::Session obs;
  serve::CatalogOptions copts;
  copts.obs = &obs;
  serve::Catalog catalog(copts);
  const graph::Graph g = graph::gnm(40, 120, 7);
  catalog.add("g", g);

  serve::ServeOptions sopts;
  sopts.obs = &obs;
  serve::Service service(catalog, sopts);
  // Three triangle queries and four cc queries: 2 passes, 5 merges.
  for (std::uint64_t id = 0; id < 3; ++id) {
    serve::Request r;
    r.id = id;
    r.tenant = "t" + std::to_string(id);
    r.graph = "g";
    r.kind = serve::QueryKind::kTriangles;
    service.submit(std::move(r));
  }
  for (std::uint64_t id = 3; id < 7; ++id) {
    serve::Request r;
    r.id = id;
    r.tenant = "t" + std::to_string(id % 2);
    r.graph = "g";
    r.kind = serve::QueryKind::kCc;
    r.vertex = static_cast<graph::Vertex>(id);
    service.submit(std::move(r));
  }
  const auto responses = service.drain();

  EXPECT_EQ(obs.metrics.counter_value("lgg_serve_passes_total"), 2u);
  EXPECT_EQ(obs.metrics.counter_value("lgg_serve_batch_merges_total"), 5u);

  // Merged-pass results equal the per-query ground truth.
  const std::uint64_t want_tri = core::count_triangles_forward(g);
  const std::vector<double> want_cc = core::clustering_coefficients(g);
  for (const auto& resp : responses) {
    ASSERT_EQ(resp.status, serve::Status::kOk) << resp.line();
    if (resp.canonical == "triangles") {
      EXPECT_EQ(resp.body, "triangles=" + std::to_string(want_tri) +
                               " backend=resilient");
    }
  }
  EXPECT_NE(responses[3].body.find("cc="), std::string::npos);
  for (std::uint64_t id = 3; id < 7; ++id)
    EXPECT_EQ(responses[id].body,
              "cc=" + obs::format_number(want_cc[id]) + " backend=host");

  // Unbatched run: same responses, one pass per request.
  serve::Catalog cat2;
  cat2.add("g", graph::gnm(40, 120, 7));
  serve::ServeOptions unbatched;
  unbatched.batching = false;
  serve::Service service2(cat2, unbatched);
  for (std::uint64_t id = 0; id < 3; ++id) {
    serve::Request r;
    r.id = id;
    r.tenant = "t" + std::to_string(id);
    r.graph = "g";
    r.kind = serve::QueryKind::kTriangles;
    service2.submit(std::move(r));
  }
  for (std::uint64_t id = 3; id < 7; ++id) {
    serve::Request r;
    r.id = id;
    r.tenant = "t" + std::to_string(id % 2);
    r.graph = "g";
    r.kind = serve::QueryKind::kCc;
    r.vertex = static_cast<graph::Vertex>(id);
    service2.submit(std::move(r));
  }
  const auto responses2 = service2.drain();
  ASSERT_EQ(responses2.size(), responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i)
    EXPECT_EQ(responses2[i].line(), responses[i].line());
}

TEST(ServeAdmission, QuotaRejectsDeterministicallyInIdOrder) {
  serve::Catalog catalog = make_catalog();
  serve::ServeOptions sopts;
  sopts.tenant_quota = 2;
  serve::Service service(catalog, sopts);
  // alice submits 4, bob 1: alice's ids 0,1 admitted, 2,3 rejected.
  for (std::uint64_t id = 0; id < 4; ++id) {
    serve::Request r;
    r.id = id;
    r.tenant = "alice";
    r.graph = "g0";
    r.kind = serve::QueryKind::kBfs;
    r.vertex = static_cast<graph::Vertex>(id);
    service.submit(std::move(r));
  }
  serve::Request rb;
  rb.id = 4;
  rb.tenant = "bob";
  rb.graph = "g0";
  rb.kind = serve::QueryKind::kTriangles;
  service.submit(std::move(rb));

  const auto responses = service.drain();
  EXPECT_EQ(responses[0].status, serve::Status::kOk);
  EXPECT_EQ(responses[1].status, serve::Status::kOk);
  EXPECT_EQ(responses[2].status, serve::Status::kRejected);
  EXPECT_EQ(responses[3].status, serve::Status::kRejected);
  EXPECT_EQ(responses[4].status, serve::Status::kOk);
}

TEST(ServeErrors, UnknownGraphAndBadVertexAreDeterministicErrors) {
  serve::Catalog catalog = make_catalog();
  serve::Service service(catalog, {});
  serve::Request a;
  a.id = 0;
  a.tenant = "t";
  a.graph = "nope";
  a.kind = serve::QueryKind::kTriangles;
  service.submit(std::move(a));
  serve::Request b;
  b.id = 1;
  b.tenant = "t";
  b.graph = "g0";
  b.kind = serve::QueryKind::kCc;
  b.vertex = 1000;  // out of range
  service.submit(std::move(b));
  const auto responses = service.drain();
  EXPECT_EQ(responses[0].status, serve::Status::kError);
  EXPECT_EQ(responses[0].body, "reason=\"unknown graph\"");
  EXPECT_EQ(responses[1].status, serve::Status::kError);
  EXPECT_EQ(responses[1].body, "reason=\"vertex out of range\"");
}

TEST(ServeDevice, CacheHitsBypassTheDeviceEntirely) {
  obs::Session obs;
  serve::CatalogOptions copts;
  copts.obs = &obs;
  serve::Catalog catalog(copts);
  catalog.add("g", graph::gnm(40, 120, 7));
  serve::ServeOptions sopts;
  sopts.obs = &obs;
  serve::Service service(catalog, sopts);

  serve::Request r;
  r.id = 0;
  r.tenant = "t";
  r.graph = "g";
  r.kind = serve::QueryKind::kTriangles;
  service.submit(r);
  const auto first = service.drain();
  const std::uint64_t launches =
      obs.metrics.counter_value("lgg_gpusim_launches_total");
  EXPECT_GT(launches, 0u);  // the miss ran the device pipeline

  r.id = 1;
  service.submit(r);
  const auto second = service.drain();
  // Zero new kernel launches on the hit, identical body.
  EXPECT_EQ(obs.metrics.counter_value("lgg_gpusim_launches_total"),
            launches);
  EXPECT_EQ(obs.metrics.counter_value("lgg_serve_cache_hits_total"), 1u);
  EXPECT_EQ(second[0].body, first[0].body);
}

TEST(ServePlan, PreparedPlanMatchesColdRunsAndChargesNoPreprocessing) {
  const graph::Graph g = graph::gnm(48, 160, 5);
  const core::AlsPrecomputed plan = core::precompute_als(g);

  core::HybridOptions cold;
  const core::HybridResult cold_run = core::count_triangles_hybrid(g, cold);
  core::HybridOptions warm;
  warm.prepared = &plan;
  const core::HybridResult warm_run = core::count_triangles_hybrid(g, warm);
  EXPECT_EQ(warm_run.triangles, cold_run.triangles);
  EXPECT_EQ(warm_run.total_tests, cold_run.total_tests);
  EXPECT_LT(warm_run.total_time_s, cold_run.total_time_s);
  EXPECT_GT(plan.preprocessing_s, 0.0);

  resilience::RunnerOptions rcold;
  const resilience::RunnerReport rep_cold = resilience::run_resilient(g, rcold);
  resilience::RunnerOptions rwarm;
  rwarm.prepared = &plan;
  const resilience::RunnerReport rep_warm = resilience::run_resilient(g, rwarm);
  EXPECT_EQ(rep_warm.triangles, rep_cold.triangles);
  EXPECT_TRUE(rep_warm.certified);
  EXPECT_EQ(rep_warm.log, rep_cold.log);
  EXPECT_LT(rep_warm.total_time_s, rep_cold.total_time_s);
}

TEST(ServeFaults, ResponsesByteIdenticalAcrossThreadsUnderFaults) {
  // Serving under a nonzero device fault rate (DESIGN.md §16): the
  // service-owned injector makes the fault pattern a pure function of the
  // request sequence, so responses AND the request log stay byte-identical
  // between 1 and 8 host threads — only recovery counters move.
  const auto run = [](std::size_t threads) {
    obs::Session obs;
    serve::CatalogOptions copts;
    copts.obs = &obs;
    serve::Catalog catalog(copts);
    catalog.add("g0", graph::gnm(40, 120, 7));
    catalog.add("g1", graph::gnm(36, 90, 9));
    serve::ServeOptions sopts;
    sopts.obs = &obs;
    sopts.cache_capacity = 0;  // every triangles query hits the device
    sopts.fault_rate = 0.3;
    sopts.fault_seed = 1;  // this seed exercises retries AND salvage
    sopts.exec = threads == 1 ? gpusim::ExecPolicy::serial()
                              : gpusim::ExecPolicy::parallel(threads);
    serve::Service service(catalog, sopts);
    std::uint64_t id = 0;
    for (int round = 0; round < 3; ++round)
      for (const char* graph : {"g0", "g1"}) {
        serve::Request r;
        r.id = id++;
        r.tenant = "t";
        r.graph = graph;
        r.kind = serve::QueryKind::kTriangles;
        service.submit(std::move(r));
      }
    const std::string responses = render(service.drain());
    const std::uint64_t faults =
        service.faults() ? service.faults()->total_faults() : 0;
    return std::tuple(responses, service.log(),
                      obs.metrics.counter_value("lgg_resilience_retries_total"),
                      faults);
  };
  const auto [res1, log1, retries1, faults1] = run(1);
  const auto [res8, log8, retries8, faults8] = run(8);
  EXPECT_EQ(res1, res8);
  EXPECT_EQ(log1, log8);
  EXPECT_EQ(retries1, retries8);
  EXPECT_EQ(faults1, faults8);
  // Faults actually fired and the recovery machinery is visible in the
  // counters; the responses above are nevertheless exact.
  EXPECT_GT(faults1, 0u);
  EXPECT_GT(retries1, 0u);

  // Fault-free reference: same script, same bodies.
  const auto fault_free = [] {
    serve::Catalog catalog;
    catalog.add("g0", graph::gnm(40, 120, 7));
    catalog.add("g1", graph::gnm(36, 90, 9));
    serve::ServeOptions sopts;
    sopts.cache_capacity = 0;
    serve::Service service(catalog, sopts);
    serve::Request r;
    r.id = 0;
    r.tenant = "t";
    r.graph = "g0";
    r.kind = serve::QueryKind::kTriangles;
    service.submit(std::move(r));
    return service.drain()[0].body;
  }();
  EXPECT_NE(res1.find(fault_free), std::string::npos);
}

TEST(ServeState, EncodeDecodeRoundTripAndTamperRejection) {
  serve::ServeState st;
  st.next_id = 17;
  st.drain_seq = 3;
  st.log = "req id=0 tenant=a graph=g query=\"triangles\" cache=miss\n";
  serve::ResultCache::Snapshot::Entry e;
  e.key = serve::CacheKey{0x1234abcdu, "triangles", 0};
  e.body = "triangles=9 backend=resilient";
  e.tick = 2;
  st.cache.entries.push_back(e);
  st.cache.tick = 5;
  st.cache.evictions = 1;
  st.has_faults = true;
  st.faults.draws = {4, 3, 2, 1};
  st.faults.counts = {1, 0, 0, 0};
  st.faults.events.push_back(
      resilience::FaultEvent{gpusim::FaultSite::kAlloc, 2, 64});

  const std::string text = serve::encode_serve_state(st);
  const serve::ServeState back = serve::decode_serve_state(text);
  EXPECT_EQ(back.next_id, st.next_id);
  EXPECT_EQ(back.drain_seq, st.drain_seq);
  EXPECT_EQ(back.log, st.log);
  ASSERT_EQ(back.cache.entries.size(), 1u);
  EXPECT_EQ(back.cache.entries[0].body, e.body);
  EXPECT_EQ(back.cache.entries[0].key.canonical, "triangles");
  EXPECT_EQ(back.cache.tick, 5u);
  EXPECT_TRUE(back.has_faults);
  EXPECT_EQ(back.faults.draws, st.faults.draws);
  EXPECT_EQ(back.faults.events, st.faults.events);

  std::string tampered = text;
  tampered[tampered.size() / 2] ^= 0x01;
  try {
    (void)serve::decode_serve_state(tampered);
    FAIL() << "tampered serve state was accepted";
  } catch (const resilience::CheckpointError& err) {
    EXPECT_EQ(err.kind(), resilience::CheckpointError::Kind::kCorrupt);
  }
}

TEST(ServeState, ServiceRestoreReproducesCacheAndLogBehavior) {
  // Drive a service through one drain, snapshot it, restore into a fresh
  // service, and replay the second drain on both: hit/miss pattern, log
  // suffix and responses must match exactly.
  const auto make_service = [](serve::Catalog& catalog) {
    serve::ServeOptions sopts;
    return serve::Service(catalog, sopts);
  };
  serve::Catalog cat_a = make_catalog();
  serve::Service svc_a = make_service(cat_a);
  std::uint64_t id = 0;
  const auto submit_round = [&](serve::Service& svc, std::uint64_t base) {
    for (const char* graph : {"g0", "g1"}) {
      serve::Request r;
      r.id = base++;
      r.tenant = "t";
      r.graph = graph;
      r.kind = serve::QueryKind::kTriangles;
      svc.submit(std::move(r));
    }
    return base;
  };
  id = submit_round(svc_a, id);
  svc_a.drain();
  serve::ServeState st = svc_a.state();
  st.next_id = id;

  // Continue the original.
  submit_round(svc_a, id);
  const std::string want = render(svc_a.drain());

  // Restore into a fresh service over a fresh catalog (residency is
  // recomputed, never checkpointed) and replay the same second round.
  serve::Catalog cat_b = make_catalog();
  serve::Service svc_b = make_service(cat_b);
  svc_b.restore_state(st);
  submit_round(svc_b, st.next_id);
  EXPECT_EQ(render(svc_b.drain()), want);
  EXPECT_EQ(svc_b.log(), svc_a.log());
  // The second round was all cache hits in both worlds.
  EXPECT_NE(svc_b.log().rfind("cache=hit"), std::string::npos);
}

TEST(ServeRequest, ParseAndCanonicalRoundTrip) {
  const serve::Request r =
      serve::parse_request_line("alice g1 doulion 0.25 42");
  EXPECT_EQ(r.tenant, "alice");
  EXPECT_EQ(r.graph, "g1");
  EXPECT_EQ(r.kind, serve::QueryKind::kDoulion);
  EXPECT_EQ(r.seed, 42u);
  EXPECT_EQ(serve::canonical_query(r), "doulion p=0.25 seed=42");

  EXPECT_THROW(serve::parse_request_line("just two"), Error);
  EXPECT_THROW(serve::parse_request_line("a g frobnicate"), Error);
  EXPECT_THROW(serve::parse_request_line("a g kclique 99"), Error);
  EXPECT_THROW(serve::parse_request_line("a g doulion 1.5 2"), Error);
}

}  // namespace
}  // namespace lgg

#include <gtest/gtest.h>

#include "core/social.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(CommonNeighbors, Basics) {
  // 0 and 1 share neighbours 2 and 3.
  const Graph g = Graph::from_edges(
      4, std::vector<graph::Edge>{{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  EXPECT_EQ(common_neighbors(g, 0, 1), 2u);
  EXPECT_EQ(common_neighbors(g, 2, 3), 2u);
  EXPECT_EQ(common_neighbors(g, 0, 2), 0u);
  EXPECT_THROW(common_neighbors(g, 0, 9), lgg::Error);
}

TEST(SuggestFriends, PaperFigure2Scenario) {
  // The Fig. 2 triangle-closure: v knows a and b; a and b both know c;
  // c is the natural suggestion for v.
  const Graph g = Graph::from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto suggestions = suggest_friends(g, 0);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].candidate, 3u);
  EXPECT_EQ(suggestions[0].mutual_friends, 2u);
}

TEST(SuggestFriends, ExcludesSelfAndExistingFriends) {
  const Graph g = graph::complete(5);
  EXPECT_TRUE(suggest_friends(g, 0).empty());  // already friends with all
}

TEST(SuggestFriends, RankedByMutualCountThenId) {
  // v=0 friends with 1,2,3.  Candidate 4 shares {1,2}; candidate 5 shares
  // {3}; candidate 6 shares {1,2} too -> order: 4, 6, 5.
  const Graph g = Graph::from_edges(
      7, std::vector<graph::Edge>{{0, 1}, {0, 2}, {0, 3}, {4, 1}, {4, 2},
                                  {5, 3}, {6, 1}, {6, 2}});
  const auto s = suggest_friends(g, 0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].candidate, 4u);
  EXPECT_EQ(s[1].candidate, 6u);
  EXPECT_EQ(s[2].candidate, 5u);
  const auto top1 = suggest_friends(g, 0, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].candidate, 4u);
}

TEST(OpenTriads, CompleteGraphHasNone) {
  EXPECT_TRUE(top_open_triads(graph::complete(6)).empty());
}

TEST(OpenTriads, StarCenterPairs) {
  // In a star, every leaf pair is an open triad with 1 common neighbour.
  const auto triads = top_open_triads(graph::star(5), 100);
  EXPECT_EQ(triads.size(), 6u);  // C(4,2) leaf pairs
  for (const auto& t : triads) {
    EXPECT_EQ(t.common, 1u);
    EXPECT_LT(t.u, t.v);
    EXPECT_GT(t.u, 0u);  // centre is adjacent to everyone
  }
}

TEST(OpenTriads, StrongestPairFirstAndLimited) {
  // Pair (0,1) shares 3 neighbours; pair (0,5) shares 1.
  const Graph g = Graph::from_edges(
      7, std::vector<graph::Edge>{{0, 2}, {1, 2}, {0, 3}, {1, 3}, {0, 4},
                                  {1, 4}, {0, 6}, {5, 6}});
  const auto triads = top_open_triads(g, 2);
  ASSERT_EQ(triads.size(), 2u);
  EXPECT_EQ(triads[0].u, 0u);
  EXPECT_EQ(triads[0].v, 1u);
  EXPECT_EQ(triads[0].common, 3u);
  EXPECT_GE(triads[0].common, triads[1].common);
}

TEST(OpenTriads, ConsistentWithCommonNeighbors) {
  const Graph g = graph::erdos_renyi(30, 0.15, 21);
  for (const auto& t : top_open_triads(g, 20)) {
    EXPECT_FALSE(g.has_edge(t.u, t.v));
    EXPECT_EQ(common_neighbors(g, t.u, t.v), t.common);
  }
}

}  // namespace
}  // namespace lgg::core

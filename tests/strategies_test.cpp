#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "combi/binomial.hpp"
#include "combi/strategies.hpp"
#include "util/error.hpp"

namespace lgg::combi {
namespace {

TEST(DivideWork, EqualSplitWithRemainder) {
  const auto ranges = divide_work(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].size(), 4u);  // "a single test more"
  EXPECT_EQ(ranges[1].size(), 3u);
  EXPECT_EQ(ranges[2].size(), 3u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[2].end, 10u);
  for (std::size_t i = 1; i < ranges.size(); ++i)
    EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
}

TEST(DivideWork, MoreThreadsThanWork) {
  const auto ranges = divide_work(2, 5);
  std::uint64_t total = 0;
  for (const auto& r : ranges) total += r.size();
  EXPECT_EQ(total, 2u);
}

TEST(DivideWork, ZeroThreadsThrows) {
  EXPECT_THROW(divide_work(5, 0), lgg::Error);
}

using StrategyCase = std::tuple<Strategy, std::uint32_t, std::uint32_t,
                                std::uint32_t>;  // strategy, n, k, threads

class AllStrategies : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(AllStrategies, EnumeratesEveryCombinationExactlyOnce) {
  const auto [strategy, n, k, threads] = GetParam();
  std::set<std::vector<std::uint32_t>> seen;
  std::uint64_t emitted = 0;
  const StrategyStats stats = enumerate_combinations(
      strategy, n, k, threads,
      [&](std::uint32_t thread, std::span<const std::uint32_t> combo) {
        EXPECT_LT(thread, threads);
        EXPECT_TRUE(std::is_sorted(combo.begin(), combo.end()));
        EXPECT_LT(combo.back(), n);
        seen.emplace(combo.begin(), combo.end());
        ++emitted;
      });
  EXPECT_EQ(stats.total_combinations, binomial(n, k));
  EXPECT_EQ(emitted, binomial(n, k));
  EXPECT_EQ(seen.size(), binomial(n, k)) << "duplicates emitted";
  const std::uint64_t thread_sum = std::accumulate(
      stats.per_thread.begin(), stats.per_thread.end(), std::uint64_t{0});
  EXPECT_EQ(thread_sum, stats.total_combinations);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllStrategies,
    ::testing::Combine(
        ::testing::Values(Strategy::kPrecomputed, Strategy::kSequential,
                          Strategy::kSplitByStart, Strategy::kEqualDivision),
        ::testing::Values(6u, 9u, 12u),
        ::testing::Values(1u, 3u, 4u),
        ::testing::Values(1u, 4u, 7u)));

TEST(Strategies, EqualDivisionIsBalanced) {
  const auto stats =
      enumerate_combinations(Strategy::kEqualDivision, 20, 3, 8);
  EXPECT_LE(stats.imbalance(), 1.01);
}

TEST(Strategies, SplitByStartIsImbalanced) {
  // Thread 0 owns start-0 combinations: C(n-1, k-1) of them — far above
  // the mean (the paper's Section VIII-C objection).
  const auto stats =
      enumerate_combinations(Strategy::kSplitByStart, 20, 3, 8);
  EXPECT_GT(stats.imbalance(), 1.5);
}

TEST(Strategies, SequentialIsSingleThreaded) {
  const auto stats = enumerate_combinations(Strategy::kSequential, 10, 3, 4);
  EXPECT_EQ(stats.per_thread[0], binomial(10, 3));
  EXPECT_EQ(stats.per_thread[1], 0u);
}

TEST(Strategies, StorageAccountingMatchesSectionVIII) {
  // A: nCk * k * log n; B: 2 k log n.
  const auto a = enumerate_combinations(Strategy::kPrecomputed, 16, 3, 2);
  EXPECT_EQ(a.storage_bits, binomial(16, 3) * 3 * 4);
  const auto b = enumerate_combinations(Strategy::kSequential, 16, 3, 2);
  EXPECT_EQ(b.storage_bits, 2u * 3 * 4);
  EXPECT_LT(b.storage_bits, a.storage_bits);
}

TEST(Strategies, InvalidArgumentsThrow) {
  EXPECT_THROW(enumerate_combinations(Strategy::kSequential, 5, 0, 1),
               lgg::Error);
  EXPECT_THROW(enumerate_combinations(Strategy::kSequential, 5, 6, 1),
               lgg::Error);
  EXPECT_THROW(enumerate_combinations(Strategy::kSequential, 5, 2, 0),
               lgg::Error);
}

TEST(Strategies, StatsWithoutSink) {
  const auto stats = enumerate_combinations(Strategy::kEqualDivision, 15, 4, 5);
  EXPECT_EQ(stats.total_combinations, binomial(15, 4));
}

TEST(StrategyName, AllNamed) {
  EXPECT_STREQ(strategy_name(Strategy::kPrecomputed), "A:precomputed");
  EXPECT_STREQ(strategy_name(Strategy::kSequential), "B:sequential");
  EXPECT_STREQ(strategy_name(Strategy::kSplitByStart), "C:split-by-start");
  EXPECT_STREQ(strategy_name(Strategy::kEqualDivision), "D:equal-division");
}

}  // namespace
}  // namespace lgg::combi

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "combi/binomial.hpp"
#include "combi/stratified.hpp"
#include "util/error.hpp"

namespace lgg::combi {
namespace {

TEST(CountWithFirstSet, ClosedForm) {
  // C(a+b, k) - C(b, k).
  EXPECT_EQ(count_with_first_set(3, 4, 3), binomial(7, 3) - binomial(4, 3));
  EXPECT_EQ(count_with_first_set(0, 5, 3), 0u);
  EXPECT_EQ(count_with_first_set(5, 0, 3), binomial(5, 3));
  EXPECT_EQ(count_with_first_set(1, 1, 2), 1u);
}

TEST(StratifiedChooser, CountMatchesClosedForm) {
  for (std::uint32_t a = 0; a <= 8; ++a)
    for (std::uint32_t b = 0; b <= 8; ++b)
      for (std::uint32_t k = 1; k <= 5; ++k) {
        const StratifiedChooser chooser(a, b, k);
        EXPECT_EQ(chooser.count(), count_with_first_set(a, b, k))
            << "a=" << a << " b=" << b << " k=" << k;
      }
}

TEST(StratifiedChooser, UnrankEnumeratesEveryCombinationOnce) {
  const std::uint32_t a = 4, b = 5, k = 3;
  const StratifiedChooser chooser(a, b, k);
  std::set<std::vector<std::uint32_t>> seen;
  std::vector<std::uint32_t> fa(k), fb(k);
  for (std::uint64_t i = 0; i < chooser.count(); ++i) {
    const auto parts = chooser.unrank(i, fa, fb);
    EXPECT_GE(parts.a_count, 1u);
    EXPECT_EQ(parts.a_count + parts.b_count, k);
    // Encode as a canonical key over the union [0, a+b): A ids as-is,
    // B ids shifted by a.
    std::vector<std::uint32_t> key;
    for (std::uint32_t j = 0; j < parts.a_count; ++j) key.push_back(fa[j]);
    for (std::uint32_t j = 0; j < parts.b_count; ++j) key.push_back(a + fb[j]);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate at index " << i;
  }
  EXPECT_EQ(seen.size(), chooser.count());
}

TEST(StratifiedChooser, RankIsInverseOfUnrank) {
  const StratifiedChooser chooser(5, 6, 4);
  std::vector<std::uint32_t> fa(4), fb(4);
  for (std::uint64_t i = 0; i < chooser.count(); ++i) {
    const auto parts = chooser.unrank(i, fa, fb);
    const std::uint64_t back = chooser.rank(
        std::span<const std::uint32_t>(fa.data(), parts.a_count),
        std::span<const std::uint32_t>(fb.data(), parts.b_count));
    EXPECT_EQ(back, i);
  }
}

TEST(StratifiedChooser, UnrankVerticesMapsThroughSets) {
  const std::vector<std::uint32_t> set_a{100, 101, 102};
  const std::vector<std::uint32_t> set_b{200, 201};
  const StratifiedChooser chooser(3, 2, 3);
  std::vector<std::uint32_t> out(3);
  std::set<std::vector<std::uint32_t>> seen;
  for (std::uint64_t i = 0; i < chooser.count(); ++i) {
    chooser.unrank_vertices(i, set_a, set_b, out);
    for (const std::uint32_t v : out)
      EXPECT_TRUE(v >= 200 ? v <= 201 : (v >= 100 && v <= 102));
    auto sorted = out;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(seen.insert(sorted).second);
  }
  EXPECT_EQ(seen.size(), binomial(5, 3) - binomial(2, 3));
}

TEST(StratifiedChooser, EmptyFamilies) {
  // k > a + b: nothing to choose.
  EXPECT_EQ(StratifiedChooser(2, 1, 4).count(), 0u);
  // a == 0: constraint unsatisfiable.
  EXPECT_EQ(StratifiedChooser(0, 9, 3).count(), 0u);
}

TEST(StratifiedChooser, UnrankOutOfRangeThrows) {
  const StratifiedChooser chooser(3, 3, 3);
  std::vector<std::uint32_t> fa(3), fb(3);
  EXPECT_THROW(chooser.unrank(chooser.count(), fa, fb), lgg::Error);
}

TEST(StratifiedChooser, SetSizeMismatchThrows) {
  const StratifiedChooser chooser(3, 2, 3);
  const std::vector<std::uint32_t> set_a{1, 2, 3};
  const std::vector<std::uint32_t> wrong_b{9};
  std::vector<std::uint32_t> out(3);
  EXPECT_THROW(chooser.unrank_vertices(0, set_a, wrong_b, out), lgg::Error);
}

TEST(StratifiedChooser, TriangleStrataMatchPaperFormulas) {
  // k=3: strata are C(a,3), C(a,2)b, aC(b,2) — Algorithm 2's firstLvl /
  // bothLvls split.
  const std::uint32_t a = 6, b = 7;
  const StratifiedChooser chooser(a, b, 3);
  EXPECT_EQ(chooser.count(), binomial(a, 3) + binomial(a, 2) * b +
                                 a * binomial(b, 2));
}

}  // namespace
}  // namespace lgg::combi

#include <gtest/gtest.h>

#include <fstream>

#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "stream/edge_stream.hpp"
#include "stream/streaming_triangles.hpp"
#include "util/error.hpp"

namespace lgg::stream {
namespace {

std::string write_temp_graph(const graph::Graph& g, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  graph::write_snap_edge_list_file(path, g, "stream test");
  return path;
}

TEST(EdgeStream, MissingFileThrows) {
  EXPECT_THROW(EdgeStream("/nonexistent/stream.txt"), lgg::Error);
}

TEST(EdgeStream, StatsAndIteration) {
  const graph::Graph g = graph::erdos_renyi(50, 0.1, 3);
  const EdgeStream stream(write_temp_graph(g, "es_basic.txt"));
  std::uint64_t visited = 0;
  const StreamStats pass =
      stream.for_each_edge([&](std::uint64_t, std::uint64_t) { ++visited; });
  EXPECT_EQ(pass.edges, g.num_edges());
  EXPECT_EQ(visited, g.num_edges());
  EXPECT_EQ(stream.stats().edges, g.num_edges());
}

TEST(EdgeStream, SkipsCommentsAndLoops) {
  const std::string path = ::testing::TempDir() + "/es_loops.txt";
  {
    std::ofstream out(path);
    out << "# header\n1 1\n1 2\n\n2 3\n";
  }
  const EdgeStream stream(path);
  EXPECT_EQ(stream.stats().edges, 2u);
  EXPECT_EQ(stream.stats().max_vertex, 3u);
}

TEST(EdgeStream, MalformedLineThrows) {
  const std::string path = ::testing::TempDir() + "/es_bad.txt";
  {
    std::ofstream out(path);
    out << "1 2\noops\n";
  }
  const EdgeStream stream(path);
  EXPECT_THROW(stream.for_each_edge({}), lgg::Error);
}

class ExternalCount : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExternalCount, ExactUnderAnyBudget) {
  const std::uint64_t budget = GetParam();
  const graph::Graph g = graph::erdos_renyi(120, 0.08, 7);
  const std::uint64_t want = core::count_triangles_forward(g);
  const EdgeStream stream(write_temp_graph(g, "es_budget.txt"));
  const ExternalCountResult r = count_triangles_external(stream, budget);
  EXPECT_EQ(r.triangles, want) << "budget " << budget;
  EXPECT_GE(r.intervals, 1u);
  EXPECT_GT(r.passes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ExternalCount,
                         ::testing::Values(10, 50, 200, 1000, 1u << 20));

TEST(ExternalCount, SmallerBudgetMorePassesLessMemory) {
  const graph::Graph g = graph::barabasi_albert(300, 4, 5);
  const EdgeStream stream(write_temp_graph(g, "es_tradeoff.txt"));
  const ExternalCountResult big = count_triangles_external(stream, 1u << 20);
  const ExternalCountResult small = count_triangles_external(stream, 64);
  EXPECT_EQ(big.triangles, small.triangles);
  EXPECT_GT(small.passes, big.passes);
  EXPECT_LT(small.peak_edges, 1200u);  // bounded working set
  EXPECT_GT(small.intervals, big.intervals);
}

TEST(ExternalCount, StructuredGraphs) {
  for (const auto& [g, want] :
       std::vector<std::pair<graph::Graph, std::uint64_t>>{
           {graph::complete(12), 220u},
           {graph::cycle(9), 0u},
           {graph::complete_bipartite(5, 5), 0u}}) {
    const EdgeStream stream(write_temp_graph(g, "es_structured.txt"));
    EXPECT_EQ(count_triangles_external(stream, 30).triangles, want);
  }
}

TEST(ExternalCount, EmptyStream) {
  const std::string path = ::testing::TempDir() + "/es_empty.txt";
  {
    std::ofstream out(path);
    out << "# nothing\n";
  }
  const EdgeStream stream(path);
  const ExternalCountResult r = count_triangles_external(stream, 100);
  EXPECT_EQ(r.triangles, 0u);
}

TEST(ExternalCount, TinyBudgetRejected) {
  const graph::Graph g = graph::complete(4);
  const EdgeStream stream(write_temp_graph(g, "es_tiny.txt"));
  EXPECT_THROW(count_triangles_external(stream, 2), lgg::Error);
}

TEST(DoulionStream, ExactAtPOne) {
  const graph::Graph g = graph::erdos_renyi(100, 0.1, 11);
  const EdgeStream stream(write_temp_graph(g, "es_doulion.txt"));
  const StreamDoulionResult r = doulion_stream(stream, 1.0, 3);
  EXPECT_EQ(r.kept_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(r.estimate,
                   static_cast<double>(core::count_triangles_forward(g)));
}

TEST(DoulionStream, SampledEstimateInRange) {
  const graph::Graph g = graph::barabasi_albert(600, 6, 13);
  const auto truth = static_cast<double>(core::count_triangles_forward(g));
  const EdgeStream stream(write_temp_graph(g, "es_doulion2.txt"));
  double sum = 0;
  const int runs = 20;
  for (int s = 0; s < runs; ++s)
    sum += doulion_stream(stream, 0.5, 50 + s).estimate;
  EXPECT_NEAR(sum / runs, truth, 0.35 * truth);
}

TEST(DoulionStream, ValidatesP) {
  const graph::Graph g = graph::complete(4);
  const EdgeStream stream(write_temp_graph(g, "es_doulion3.txt"));
  EXPECT_THROW(doulion_stream(stream, 0.0, 1), lgg::Error);
  EXPECT_THROW(doulion_stream(stream, 1.0001, 1), lgg::Error);
}

}  // namespace
}  // namespace lgg::stream

#include <gtest/gtest.h>

#include "combi/binomial.hpp"
#include "core/kcount.hpp"
#include "core/subgraph_gpu.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using graph::Graph;

GpuKCountOptions small_launch() {
  GpuKCountOptions opts;
  opts.blocks = 4;
  opts.threads_per_block = 64;
  return opts;
}

class GpuKCliques : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GpuKCliques, MatchesCpuOracle) {
  const std::uint32_t k = GetParam();
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const Graph g = graph::erdos_renyi(30, 0.3, seed);
    const GpuKCountResult r = count_kcliques_gpu(g, k, small_launch());
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.count, count_kcliques(g, k)) << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(K, GpuKCliques, ::testing::Values(1, 2, 3, 4, 5));

TEST(GpuKCliques, StructuredGraphs) {
  EXPECT_EQ(count_kcliques_gpu(graph::complete(10), 4, small_launch()).count,
            combi::binomial(10, 4));
  EXPECT_EQ(count_kcliques_gpu(graph::cycle(12), 3, small_launch()).count, 0u);
  EXPECT_EQ(
      count_kcliques_gpu(graph::complete_bipartite(5, 5), 3, small_launch())
          .count,
      0u);
  // k = 3 equals the triangle counters.
  const Graph g = graph::barabasi_albert(80, 3, 4);
  EXPECT_EQ(count_kcliques_gpu(g, 3, small_launch()).count,
            count_triangles_edge_iterator(g));
}

class GpuConnSubgraphs : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GpuConnSubgraphs, MatchesEsu) {
  const std::uint32_t k = GetParam();
  const Graph g = graph::erdos_renyi(20, 0.2, 5);
  const GpuKCountResult r = count_connected_subgraphs_gpu(g, k, small_launch());
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.count, count_connected_subgraphs(g, k)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(K, GpuConnSubgraphs, ::testing::Values(1, 2, 3, 4));

TEST(GpuConnSubgraphs, PathsAndGrids) {
  EXPECT_EQ(count_connected_subgraphs_gpu(graph::path(12), 3, small_launch())
                .count,
            10u);
  const Graph grid = graph::grid2d(3, 3);
  EXPECT_EQ(
      count_connected_subgraphs_gpu(grid, 3, small_launch()).count,
      count_connected_subgraphs(grid, 3));
}

TEST(GpuKCount, SamplingRescalesAndFlags) {
  const Graph g = graph::erdos_renyi(60, 0.3, 9);
  GpuKCountOptions opts = small_launch();
  const GpuKCountResult exact = count_kcliques_gpu(g, 3, opts);
  opts.max_simulated_tests = exact.total_tests / 4;
  const GpuKCountResult sampled = count_kcliques_gpu(g, 3, opts);
  EXPECT_FALSE(sampled.exact);
  EXPECT_LT(sampled.simulated_tests, sampled.total_tests);
  EXPECT_NEAR(static_cast<double>(sampled.kernel.global_slots),
              static_cast<double>(exact.kernel.global_slots),
              0.1 * static_cast<double>(exact.kernel.global_slots));
}

TEST(GpuKCount, PairProbesScaleWithK) {
  const Graph g = graph::erdos_renyi(24, 0.4, 3);
  const auto k3 = count_kcliques_gpu(g, 3, small_launch());
  const auto k4 = count_kcliques_gpu(g, 4, small_launch());
  // C(3,2)=3 vs C(4,2)=6 probes per candidate.
  EXPECT_NEAR(static_cast<double>(k3.kernel.transactions) /
                  static_cast<double>(k3.total_tests * 3),
              static_cast<double>(k4.kernel.transactions) /
                  static_cast<double>(k4.total_tests * 6),
              1.0);
}

TEST(GpuKCount, Validation) {
  EXPECT_THROW(count_kcliques_gpu(Graph(3), 0, small_launch()), lgg::Error);
  EXPECT_THROW(count_kcliques_gpu(Graph(3), 17, small_launch()), lgg::Error);
  GpuKCountOptions bad = small_launch();
  bad.threads_per_block = 33;
  EXPECT_THROW(count_kcliques_gpu(Graph(3), 3, bad), lgg::Error);
}

TEST(GpuKCount, EmptyGraph) {
  const auto r = count_kcliques_gpu(Graph(0), 3, small_launch());
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.total_tests, 0u);
  EXPECT_TRUE(r.exact);
}

// ---- listing ----

TEST(GpuListing, MatchesHostListing) {
  for (const std::uint64_t seed : {1ull, 7ull}) {
    const Graph g = graph::erdos_renyi(40, 0.2, seed);
    const GpuTriangleListing listing = list_triangles_gpu(g, small_launch());
    ASSERT_TRUE(listing.exact);
    auto host = list_triangles(g);
    std::sort(host.begin(), host.end());
    EXPECT_EQ(listing.triangles, host) << "seed " << seed;
    EXPECT_EQ(listing.output_bytes, host.size() * 12);
  }
}

TEST(GpuListing, OutputTrafficCharged) {
  const Graph g = graph::complete(16);  // 560 triangles
  const GpuTriangleListing listing = list_triangles_gpu(g, small_launch());
  const GpuKCountResult counting = count_kcliques_gpu(g, 3, small_launch());
  EXPECT_EQ(listing.triangles.size(), 560u);
  EXPECT_GT(listing.kernel.transactions, counting.kernel.transactions);
  EXPECT_GT(listing.kernel.bytes, counting.kernel.bytes);
}

TEST(GpuListing, TriangleFreeGraphListsNothing) {
  const GpuTriangleListing listing =
      list_triangles_gpu(graph::complete_bipartite(6, 6), small_launch());
  EXPECT_TRUE(listing.exact);
  EXPECT_TRUE(listing.triangles.empty());
  EXPECT_EQ(listing.output_bytes, 0u);
}

}  // namespace
}  // namespace lgg::core

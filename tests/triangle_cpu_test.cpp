#include <gtest/gtest.h>

#include <algorithm>

#include "combi/binomial.hpp"
#include "core/triangle_cpu.hpp"
#include "core/timing_model.hpp"
#include "graph/generators.hpp"

namespace lgg::core {
namespace {

using combi::binomial;
using graph::Graph;

std::uint64_t oracle(const Graph& g) { return count_triangles_edge_iterator(g); }

// ---- known counts on structured graphs ----

struct KnownCount {
  const char* name;
  Graph graph;
  std::uint64_t triangles;
};

std::vector<KnownCount> known_cases() {
  std::vector<KnownCount> cases;
  cases.push_back({"K4", graph::complete(4), 4});
  cases.push_back({"K5", graph::complete(5), 10});
  cases.push_back({"K10", graph::complete(10), binomial(10, 3)});
  cases.push_back({"C3", graph::cycle(3), 1});
  cases.push_back({"C4", graph::cycle(4), 0});
  cases.push_back({"C10", graph::cycle(10), 0});
  cases.push_back({"star", graph::star(20), 0});
  cases.push_back({"path", graph::path(20), 0});
  cases.push_back({"grid", graph::grid2d(5, 6), 0});
  cases.push_back({"K3,4", graph::complete_bipartite(3, 4), 0});
  cases.push_back({"empty", Graph(7), 0});
  cases.push_back(
      {"2xK4", graph::disjoint_union(graph::complete(4), graph::complete(4)),
       8});
  return cases;
}

TEST(TriangleCountsKnown, AllAlgorithmsAgree) {
  for (const auto& c : known_cases()) {
    EXPECT_EQ(count_triangles_edge_iterator(c.graph), c.triangles) << c.name;
    EXPECT_EQ(count_triangles_forward(c.graph), c.triangles) << c.name;
    EXPECT_EQ(
        count_triangles_bitmatrix(graph::BitMatrix::from_graph(c.graph)),
        c.triangles)
        << c.name;
    EXPECT_EQ(count_triangles_cpu_als(c.graph).triangles, c.triangles)
        << c.name;
  }
}

// ---- property: all four algorithms agree on random graphs ----

class TriangleAgreement
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(TriangleAgreement, RandomGraphs) {
  const auto [seed, p] = GetParam();
  const Graph g = graph::erdos_renyi(60, p, seed);
  const std::uint64_t want = oracle(g);
  EXPECT_EQ(count_triangles_forward(g), want);
  EXPECT_EQ(count_triangles_bitmatrix(graph::BitMatrix::from_graph(g)), want);
  EXPECT_EQ(count_triangles_cpu_als(g).triangles, want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TriangleAgreement,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.02, 0.1, 0.3, 0.7)));

TEST(TriangleAgreement, PowerLawGraphs) {
  const Graph ba = graph::barabasi_albert(300, 4, 9);
  EXPECT_EQ(count_triangles_forward(ba), oracle(ba));
  EXPECT_EQ(count_triangles_cpu_als(ba).triangles, oracle(ba));
  const Graph rm = graph::rmat(8, 6, 4);
  EXPECT_EQ(count_triangles_forward(rm), oracle(rm));
  EXPECT_EQ(count_triangles_cpu_als(rm).triangles, oracle(rm));
}

// ---- operation accounting ----

TEST(CpuAls, TestCountMatchesPlan) {
  const Graph g = graph::erdos_renyi(70, 0.08, 11);
  const CpuAlsResult r = count_triangles_cpu_als(g);
  const AlsPlan plan = build_als_plan(g);
  EXPECT_EQ(r.tests, plan.total_tests);
  EXPECT_EQ(r.bfs_edges, plan.bfs_edges_visited);
  // Short-circuit probing: between 1 and 3 probes per test.
  EXPECT_GE(r.adjacency_probes, r.tests);
  EXPECT_LE(r.adjacency_probes, 3 * r.tests);
}

TEST(CpuAls, ModelTimeIsPositiveAndMonotone) {
  const Graph small = graph::erdos_renyi(40, 0.2, 1);
  const Graph large = graph::erdos_renyi(120, 0.2, 1);
  const double ts = cpu_model_time_s(count_triangles_cpu_als(small));
  const double tl = cpu_model_time_s(count_triangles_cpu_als(large));
  EXPECT_GT(ts, 0.0);
  EXPECT_GT(tl, ts);
  // Plan-based and measurement-based models agree exactly (same counts).
  EXPECT_DOUBLE_EQ(cpu_model_time_s(build_als_plan(large)), tl);
}

// ---- listing ----

TEST(TriangleListing, MatchesCountAndIsValid) {
  const Graph g = graph::erdos_renyi(50, 0.15, 13);
  const auto triangles = list_triangles(g);
  EXPECT_EQ(triangles.size(), oracle(g));
  std::set<std::array<graph::Vertex, 3>> unique(triangles.begin(),
                                                triangles.end());
  EXPECT_EQ(unique.size(), triangles.size()) << "duplicate triangle listed";
  for (const auto& t : triangles) {
    EXPECT_LT(t[0], t[1]);
    EXPECT_LT(t[1], t[2]);
    EXPECT_TRUE(g.has_edge(t[0], t[1]));
    EXPECT_TRUE(g.has_edge(t[1], t[2]));
    EXPECT_TRUE(g.has_edge(t[0], t[2]));
  }
}

TEST(TriangleFree, Detection) {
  EXPECT_TRUE(is_triangle_free(graph::cycle(5)));
  EXPECT_TRUE(is_triangle_free(graph::complete_bipartite(4, 4)));
  EXPECT_TRUE(is_triangle_free(graph::grid2d(4, 4)));
  EXPECT_FALSE(is_triangle_free(graph::complete(3)));
  EXPECT_TRUE(is_triangle_free(Graph(0)));
}

// ---- clustering statistics ----

TEST(Clustering, CompleteGraphAllOnes) {
  const auto cc = clustering_coefficients(graph::complete(6));
  for (const double c : cc) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(transitivity(graph::complete(6)), 1.0);
}

TEST(Clustering, TriangleFreeAllZero) {
  const auto cc = clustering_coefficients(graph::complete_bipartite(3, 3));
  for (const double c : cc) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_DOUBLE_EQ(transitivity(graph::complete_bipartite(3, 3)), 0.0);
}

TEST(Clustering, KnownMixedGraph) {
  // Triangle 0-1-2 plus pendant 3 attached to 2.
  const Graph g = Graph::from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto cc = clustering_coefficients(g);
  EXPECT_DOUBLE_EQ(cc[0], 1.0);
  EXPECT_DOUBLE_EQ(cc[1], 1.0);
  EXPECT_DOUBLE_EQ(cc[2], 1.0 / 3.0);  // one closed pair of three
  EXPECT_DOUBLE_EQ(cc[3], 0.0);
  // Wedges: deg {2,2,3,1} -> 1+1+3+0 = 5; transitivity = 3*1/5.
  EXPECT_DOUBLE_EQ(transitivity(g), 0.6);
}

TEST(TrianglesPerVertex, SumsToThreeTimesTotal) {
  const Graph g = graph::erdos_renyi(80, 0.1, 17);
  const auto per_vertex = triangles_per_vertex(g);
  std::uint64_t sum = 0;
  for (const auto t : per_vertex) sum += t;
  EXPECT_EQ(sum, 3 * oracle(g));
}

}  // namespace
}  // namespace lgg::core

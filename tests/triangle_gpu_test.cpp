#include <gtest/gtest.h>

#include "core/triangle_cpu.hpp"
#include "core/triangle_gpu.hpp"
#include "gpusim/calibration.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using graph::Graph;

GpuTriangleOptions with_layout(GpuLayout layout) {
  GpuTriangleOptions opts;
  opts.layout = layout;
  opts.blocks = 8;  // small launches keep exact simulation fast in tests
  opts.threads_per_block = 64;
  return opts;
}

const GpuLayout kAllLayouts[] = {GpuLayout::kNaive, GpuLayout::kCoalesced,
                                 GpuLayout::kCoalescedAntiCamping};

// ---- functional correctness: exact simulation equals CPU oracle ----

class GpuLayoutsCorrect : public ::testing::TestWithParam<GpuLayout> {};

TEST_P(GpuLayoutsCorrect, MatchesOracleOnRandomGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = graph::erdos_renyi(48, 0.15, seed);
    const auto result = count_triangles_gpu(g, with_layout(GetParam()));
    EXPECT_TRUE(result.exact);
    EXPECT_EQ(result.triangles, count_triangles_edge_iterator(g))
        << "seed " << seed;
    EXPECT_EQ(result.simulated_tests, result.total_tests);
  }
}

TEST_P(GpuLayoutsCorrect, MatchesOracleOnStructuredGraphs) {
  const Graph cases[] = {graph::complete(12), graph::cycle(9),
                         graph::star(15), graph::complete_bipartite(5, 6),
                         graph::disjoint_union(graph::complete(5),
                                               graph::cycle(7))};
  for (const Graph& g : cases) {
    const auto result = count_triangles_gpu(g, with_layout(GetParam()));
    EXPECT_TRUE(result.exact);
    EXPECT_EQ(result.triangles, count_triangles_edge_iterator(g));
  }
}

TEST_P(GpuLayoutsCorrect, EmptyAndTinyGraphs) {
  EXPECT_EQ(count_triangles_gpu(Graph(0), with_layout(GetParam())).triangles,
            0u);
  EXPECT_EQ(count_triangles_gpu(Graph(2), with_layout(GetParam())).triangles,
            0u);
  EXPECT_EQ(
      count_triangles_gpu(graph::complete(3), with_layout(GetParam()))
          .triangles,
      1u);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, GpuLayoutsCorrect,
                         ::testing::ValuesIn(kAllLayouts));

// ---- architectural claims the paper makes ----

TEST(GpuLayouts, CoalescedIssuesFewerTransactionsThanNaive) {
  const Graph g = graph::erdos_renyi(64, 0.2, 7);
  const auto naive = count_triangles_gpu(g, with_layout(GpuLayout::kNaive));
  const auto coalesced =
      count_triangles_gpu(g, with_layout(GpuLayout::kCoalesced));
  EXPECT_EQ(naive.kernel.global_slots > 0, true);
  EXPECT_LT(coalesced.kernel.transactions_per_slot(),
            naive.kernel.transactions_per_slot());
}

TEST(GpuLayouts, AntiCampingReducesCampingFactor) {
  // Several similar components give multiple ALS blocks to spread.
  Graph g = graph::erdos_renyi(40, 0.25, 1);
  for (std::uint64_t s = 2; s <= 4; ++s)
    g = graph::disjoint_union(g, graph::erdos_renyi(40, 0.25, s));
  const auto coalesced =
      count_triangles_gpu(g, with_layout(GpuLayout::kCoalesced));
  const auto anti =
      count_triangles_gpu(g, with_layout(GpuLayout::kCoalescedAntiCamping));
  EXPECT_LE(anti.kernel.camping_factor,
            coalesced.kernel.camping_factor + 1e-9);
}

TEST(GpuLayouts, RedundantLayoutUsesMoreDeviceMemory) {
  // The Fig. 9 layout duplicates boundary levels, so its footprint can
  // exceed the single matrix for multi-ALS graphs.
  const Graph g = graph::barabasi_albert(120, 2, 5);
  const auto shared_matrix =
      count_triangles_gpu(g, with_layout(GpuLayout::kCoalesced));
  const auto redundant =
      count_triangles_gpu(g, with_layout(GpuLayout::kCoalescedAntiCamping));
  EXPECT_GT(redundant.device_bytes, 0u);
  EXPECT_GT(shared_matrix.device_bytes, 0u);
  // Device bytes drive the transfer model.
  EXPECT_GT(redundant.transfer.time_s, 0.0);
  EXPECT_EQ(shared_matrix.transfer.bytes, shared_matrix.device_bytes);
}

TEST(GpuResult, TimingDecomposition) {
  const Graph g = graph::erdos_renyi(40, 0.3, 3);
  const auto r = count_triangles_gpu(g, with_layout(GpuLayout::kNaive));
  EXPECT_GT(r.preprocessing_s, 0.0);
  EXPECT_GT(r.kernel.kernel_time_s, 0.0);
  EXPECT_NEAR(r.total_time_s,
              r.preprocessing_s + r.transfer.time_s +
                  gpusim::calibration::kDispatchOverheadS +
                  gpusim::calibration::kDeviceInitOverheadS +
                  r.kernel.kernel_time_s,
              1e-12);
}

// ---- test sampling ----

TEST(GpuSampling, TruncatedRunRescalesStatistics) {
  const Graph g = graph::erdos_renyi(64, 0.3, 5);
  GpuTriangleOptions exact_opts = with_layout(GpuLayout::kCoalesced);
  const auto exact = count_triangles_gpu(g, exact_opts);

  GpuTriangleOptions sampled_opts = exact_opts;
  sampled_opts.max_simulated_tests = exact.total_tests / 4;
  const auto sampled = count_triangles_gpu(g, sampled_opts);

  EXPECT_FALSE(sampled.exact);
  EXPECT_LT(sampled.simulated_tests, sampled.total_tests);
  EXPECT_EQ(sampled.total_tests, exact.total_tests);
  // Rescaled aggregate statistics land near the exact run.
  EXPECT_NEAR(static_cast<double>(sampled.kernel.global_slots),
              static_cast<double>(exact.kernel.global_slots),
              0.05 * static_cast<double>(exact.kernel.global_slots));
  EXPECT_NEAR(sampled.kernel.kernel_time_s, exact.kernel.kernel_time_s,
              0.5 * exact.kernel.kernel_time_s);
  EXPECT_LT(sampled.kernel.sample_fraction, 1.0);
}

TEST(GpuSampling, BudgetLargerThanWorkStaysExact) {
  const Graph g = graph::complete(10);
  GpuTriangleOptions opts = with_layout(GpuLayout::kNaive);
  opts.max_simulated_tests = 1u << 30;
  const auto r = count_triangles_gpu(g, opts);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.triangles, 120u);
}

// ---- devices and validation ----

TEST(GpuOptions, RunsOnFermiDevices) {
  const Graph g = graph::erdos_renyi(40, 0.2, 2);
  GpuTriangleOptions opts = with_layout(GpuLayout::kCoalesced);
  opts.device = &gpusim::tesla_c2050();
  const auto r = count_triangles_gpu(g, opts);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.triangles, count_triangles_edge_iterator(g));
}

TEST(GpuOptions, InvalidThreadsPerBlockThrows) {
  GpuTriangleOptions opts;
  opts.threads_per_block = 20;  // not a warp multiple
  EXPECT_THROW(count_triangles_gpu(graph::complete(4), opts), lgg::Error);
}

TEST(GpuLayoutName, AllNamed) {
  EXPECT_STREQ(gpu_layout_name(GpuLayout::kNaive), "naive");
  EXPECT_STREQ(gpu_layout_name(GpuLayout::kCoalesced), "coalesced");
  EXPECT_STREQ(gpu_layout_name(GpuLayout::kCoalescedAntiCamping),
               "coalesced+anti-camping");
}

}  // namespace
}  // namespace lgg::core

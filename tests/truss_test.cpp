#include <gtest/gtest.h>

#include "core/truss.hpp"
#include "core/triangle_cpu.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace lgg::core {
namespace {

using graph::Graph;

TEST(Truss, KnownDecompositions) {
  // K_n: every edge in n-2 triangles -> everything is the n-truss.
  const TrussDecomposition k6 = truss_decomposition(graph::complete(6));
  EXPECT_EQ(k6.max_truss, 6u);
  for (const auto t : k6.truss) EXPECT_EQ(t, 6u);

  // Triangle-free graphs: all edges have truss exactly 2.
  const TrussDecomposition bip =
      truss_decomposition(graph::complete_bipartite(4, 4));
  EXPECT_EQ(bip.max_truss, 2u);
  for (const auto t : bip.truss) EXPECT_EQ(t, 2u);

  // A single triangle: all three edges truss 3.
  const TrussDecomposition tri = truss_decomposition(graph::cycle(3));
  EXPECT_EQ(tri.max_truss, 3u);
  for (const auto t : tri.truss) EXPECT_EQ(t, 3u);

  // Edgeless graph.
  EXPECT_EQ(truss_decomposition(Graph(5)).max_truss, 0u);
}

TEST(Truss, TriangleWithPendantEdge) {
  // Triangle 0-1-2 plus pendant 2-3: triangle edges truss 3, pendant 2.
  const Graph g = Graph::from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const TrussDecomposition d = truss_decomposition(g);
  for (std::size_t i = 0; i < d.edges.size(); ++i) {
    const bool pendant = d.edges[i] == graph::Edge{2, 3};
    EXPECT_EQ(d.truss[i], pendant ? 2u : 3u);
  }
}

TEST(Truss, SubgraphDefinitionHolds) {
  // Every edge of the k-truss must sit in >= k-2 triangles WITHIN it.
  const Graph g = graph::erdos_renyi(60, 0.15, 9);
  const TrussDecomposition d = truss_decomposition(g);
  for (std::uint32_t k = 3; k <= d.max_truss; ++k) {
    const Graph sub = ktruss_subgraph(g, k);
    for (const auto& [u, v] : sub.edges()) {
      std::uint64_t support = 0;
      for (const graph::Vertex w : sub.neighbors(u))
        if (sub.has_edge(v, w)) ++support;
      EXPECT_GE(support + 2, k) << "edge " << u << "-" << v << " in " << k
                                << "-truss";
    }
  }
}

TEST(Truss, MaximalityAtMaxTruss) {
  // The max_truss subgraph is non-empty; the (max_truss+1)-truss is empty.
  const Graph g = graph::barabasi_albert(120, 5, 3);
  const TrussDecomposition d = truss_decomposition(g);
  ASSERT_GE(d.max_truss, 3u);
  EXPECT_GT(ktruss_subgraph(g, d.max_truss).num_edges(), 0u);
  EXPECT_EQ(ktruss_subgraph(g, d.max_truss + 1).num_edges(), 0u);
}

TEST(Truss, TwoTrussIsWholeGraph) {
  const Graph g = graph::erdos_renyi(50, 0.1, 4);
  EXPECT_EQ(ktruss_subgraph(g, 2).num_edges(), g.num_edges());
  EXPECT_THROW(ktruss_subgraph(g, 1), lgg::Error);
}

TEST(Truss, ThreeTrussEdgesEachInATriangle) {
  const Graph g = graph::erdos_renyi(70, 0.12, 11);
  const Graph t3 = ktruss_subgraph(g, 3);
  for (const auto& [u, v] : t3.edges()) {
    bool in_triangle = false;
    for (const graph::Vertex w : t3.neighbors(u))
      if (t3.has_edge(v, w)) in_triangle = true;
    EXPECT_TRUE(in_triangle);
  }
}

TEST(Truss, NestedSubgraphs) {
  const Graph g = graph::barabasi_albert(150, 4, 7);
  const TrussDecomposition d = truss_decomposition(g);
  for (std::uint32_t k = 3; k <= d.max_truss; ++k)
    EXPECT_LE(ktruss_subgraph(g, k).num_edges(),
              ktruss_subgraph(g, k - 1).num_edges());
}

}  // namespace
}  // namespace lgg::core

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace lgg {
namespace {

// ---------- bits ----------

TEST(Bits, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
  EXPECT_EQ(words_for_bits(129), 3u);
}

TEST(Bits, SetGetClear) {
  std::vector<std::uint64_t> words(3, 0);
  for (const std::size_t i : {0u, 1u, 63u, 64u, 127u, 128u, 191u}) {
    EXPECT_FALSE(get_bit(words, i));
    set_bit(words, i);
    EXPECT_TRUE(get_bit(words, i));
  }
  clear_bit(words, 64);
  EXPECT_FALSE(get_bit(words, 64));
  EXPECT_TRUE(get_bit(words, 63));
  EXPECT_TRUE(get_bit(words, 127));
}

TEST(Bits, Popcount) {
  std::vector<std::uint64_t> words{0xFFull, 0x1ull, 0x8000000000000000ull};
  EXPECT_EQ(popcount(words), 8u + 1u + 1u);
}

TEST(Bits, AndPopcount) {
  std::vector<std::uint64_t> a{0b1100, 0xFFFF};
  std::vector<std::uint64_t> b{0b1010, 0xFF00};
  EXPECT_EQ(and_popcount(a, b), 1u + 8u);
}

TEST(Bits, AndPopcountDifferentLengthsUsesShorter) {
  std::vector<std::uint64_t> a{~0ull, ~0ull};
  std::vector<std::uint64_t> b{~0ull};
  EXPECT_EQ(and_popcount(a, b), 64u);
}

TEST(Bits, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(0, 256), 0u);
  EXPECT_EQ(round_up_pow2(1, 256), 256u);
  EXPECT_EQ(round_up_pow2(256, 256), 256u);
  EXPECT_EQ(round_up_pow2(257, 256), 512u);
}

TEST(Bits, ForEachSetBitVisitsAscending) {
  std::vector<std::uint64_t> words(2, 0);
  const std::vector<std::size_t> want{0, 5, 63, 64, 100};
  std::span<std::uint64_t> span_words(words);
  for (const std::size_t i : want) set_bit(span_words, i);
  std::vector<std::size_t> got;
  for_each_set_bit(words, [&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

// ---------- prng ----------

TEST(Prng, DeterministicStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Prng, UniformBoundRespected) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Prng, UniformZeroBound) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Prng, Uniform01Range) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, UniformIsRoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.uniform(10)];
  for (const int b : buckets) EXPECT_NEAR(b, draws / 10, draws / 100);
}

TEST(Prng, SplitMixExpandsZeroSeed) {
  // Zero seed must still give a usable stream.
  Xoshiro256 rng(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 50; ++i) vals.insert(rng.next());
  EXPECT_GT(vals.size(), 45u);
}

// ---------- error ----------

TEST(Error, LggCheckThrowsWithMessage) {
  try {
    LGG_CHECK(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Error, LggAssertThrowsLogicError) {
  EXPECT_THROW(LGG_ASSERT(1 == 2), std::logic_error);
}

// ---------- table ----------

TEST(Table, AlignedOutput) {
  TextTable t({"name", "n"});
  t.new_row().add("alpha").add(std::uint64_t{5});
  t.new_row().add("b").add(std::uint64_t{123456});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("123456"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvQuotesCommas) {
  TextTable t({"a"});
  t.new_row().add("x,y");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  TextTable t({"only"});
  t.new_row().add("ok");
  EXPECT_THROW(t.add("overflow"), Error);
}

TEST(Table, AddBeforeNewRowThrows) {
  TextTable t({"c"});
  EXPECT_THROW(t.add("x"), Error);
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4ull * 1024 * 1024 * 1024), "4.00 GiB");
}

TEST(Table, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
  EXPECT_EQ(format_seconds(0.0015), "1.500 ms");
  EXPECT_EQ(format_seconds(0.0000015), "1.500 us");
}

// ---------- thread pool ----------

TEST(ThreadPool, CoversWholeRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 0) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, PropagatesExceptionFromWorkerChunk) {
  // Chunk 0 runs inline on the caller; force the throw into a chunk that
  // is executed by a pool worker (lo != 0) and check it still propagates.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo != 0)
                                     throw std::runtime_error("worker boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SmallRangeSpawnsNoEmptyChunks) {
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(3, [&](std::size_t lo, std::size_t hi) {
    const std::lock_guard lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::size_t covered = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi) << "empty chunk spawned";
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 3u);
  EXPECT_LE(chunks.size(), 3u);
}

TEST(ThreadPool, GrainBoundsChunkSize) {
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<std::size_t> sizes;
  pool.parallel_for(
      100,
      [&](std::size_t lo, std::size_t hi) {
        const std::lock_guard lock(mu);
        sizes.push_back(hi - lo);
      },
      40);
  std::size_t covered = 0;
  for (const std::size_t s : sizes) {
    EXPECT_GE(s, 40u);  // n >= grain: every chunk holds >= grain elements
    covered += s;
  }
  EXPECT_EQ(covered, 100u);
  EXPECT_LE(sizes.size(), 2u);  // 100 / 40 = 2 chunks max
}

TEST(ThreadPoolDynamic, CoversWholeRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_dynamic(1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolDynamic, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_dynamic(0, [&](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolDynamic, GrainBoundsChunkCount) {
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_dynamic(
      100,
      [&](std::size_t lo, std::size_t hi) {
        const std::lock_guard lock(mu);
        chunks.emplace_back(lo, hi);
      },
      40);
  std::size_t covered = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 100u);
  EXPECT_LE(chunks.size(), 2u);  // 100 / 40 = at most 2 chunks
}

TEST(ThreadPoolDynamic, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_dynamic(
                   100,
                   [](std::size_t lo, std::size_t) {
                     if (lo != 0) throw std::runtime_error("dynamic boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(
      5,
      [&](std::size_t lo, std::size_t hi) {
        const std::lock_guard lock(mu);
        chunks.emplace_back(lo, hi);
      },
      64);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks.front(), (std::pair<std::size_t, std::size_t>{0, 5}));
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> total{0};
  ThreadPool::shared().parallel_for(257, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 257);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t, std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace lgg

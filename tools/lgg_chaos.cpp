// lgg_chaos — kill-resume chaos harness for the durable checkpoint path
// (DESIGN.md §16).
//
//   lgg_chaos resilient --dir DIR [--gnm N M SEED] [--faults RATE[,SEED]]
//             [--kill-after K] [--every E] [--threads T] [--shared-mem B]
//
// The harness proves the checkpoint/restart contract the hard way: it
// does not simulate a crash, it TAKES one.  Three subprocess runs of the
// same workload (same binary, `worker` mode):
//
//   1. reference — runs to completion with checkpointing on, writes every
//      artifact (report, audit log, Chrome trace, span tree, Prometheus),
//   2. victim    — identical, except it hard-exits (std::_Exit, code 42,
//      no unwinding) immediately after the K-th durable checkpoint write,
//   3. resumed   — restarts from the victim's checkpoint and completes.
//
// The resumed run's artifacts must be BYTE-identical to the reference's;
// any drift — one span, one counter, one log line — fails the harness.
// Exit 0 on identity, 1 on drift or protocol violation, 2 on usage.
//
// `worker` is the internal single-run mode the parent spawns; it is not
// part of the supported surface.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>

#include "lgg.hpp"

namespace {

using namespace lgg;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage:\n"
      "  lgg_chaos resilient --dir DIR [--gnm N M SEED]\n"
      "            [--faults RATE[,SEED]] [--kill-after K] [--every E]\n"
      "            [--threads T] [--shared-mem BYTES]\n"
      "\n"
      "Runs the resilient triangle workload three times (reference /\n"
      "killed-after-K-checkpoints / resumed) and byte-compares every\n"
      "artifact of the resumed run against the reference.\n";
  std::exit(2);
}

struct Config {
  // Sparse G(n,m): many BFS levels => many chunks on the small-shared
  // device below (14 with the defaults), so a kill after 2 checkpoints
  // leaves most of the run for the resumed process.
  std::uint64_t n = 400, m = 800, seed = 7;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 7;
  std::uint32_t kill_after = 2;
  std::uint32_t every = 1;
  std::uint64_t threads = 0;
  std::uint32_t shared_mem = 128;  // small shared => many chunks
  std::string dir;
  // worker-only
  std::string ckpt, out;
  bool resume = false;
  std::uint32_t worker_kill = 0;  // 0: run to completion
};

bool take_value(std::vector<std::string>& args, const std::string& flag,
                std::string& value) {
  const std::string joined = flag + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      if (it + 1 == args.end()) usage(("missing value for " + flag).c_str());
      value = *(it + 1);
      args.erase(it, it + 2);
      return true;
    }
    if (it->compare(0, joined.size(), joined) == 0) {
      value = it->substr(joined.size());
      args.erase(it);
      return true;
    }
  }
  return false;
}

bool take_flag(std::vector<std::string>& args, const std::string& flag) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

Config parse_config(std::vector<std::string>& args) {
  Config c;
  std::string value;
  if (take_value(args, "--gnm", value)) {
    // --gnm takes three following positionals when given as "--gnm N M S";
    // accept "--gnm=N,M,S" too.
    std::replace(value.begin(), value.end(), ',', ' ');
    std::istringstream is(value);
    if (!(is >> c.n >> c.m >> c.seed)) usage("--gnm needs N M SEED");
  }
  if (take_value(args, "--faults", value)) {
    const std::size_t comma = value.find(',');
    c.fault_rate = std::strtod(value.c_str(), nullptr);
    if (comma != std::string::npos)
      c.fault_seed = std::strtoull(value.c_str() + comma + 1, nullptr, 10);
    if (c.fault_rate < 0.0 || c.fault_rate > 1.0)
      usage("--faults rate must be in [0, 1]");
  }
  if (take_value(args, "--kill-after", value))
    c.kill_after = static_cast<std::uint32_t>(
        std::strtoul(value.c_str(), nullptr, 10));
  if (take_value(args, "--every", value))
    c.every =
        static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
  if (take_value(args, "--threads", value))
    c.threads = std::strtoull(value.c_str(), nullptr, 10);
  if (take_value(args, "--shared-mem", value))
    c.shared_mem = static_cast<std::uint32_t>(
        std::strtoul(value.c_str(), nullptr, 10));
  take_value(args, "--dir", c.dir);
  take_value(args, "--ckpt", c.ckpt);
  take_value(args, "--out", c.out);
  c.resume = take_flag(args, "--resume");
  if (take_value(args, "--worker-kill", value))
    c.worker_kill = static_cast<std::uint32_t>(
        std::strtoul(value.c_str(), nullptr, 10));
  if (!args.empty()) usage(("unknown option: " + args[0]).c_str());
  return c;
}

void write_or_die(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LGG_CHECK(out.good(), "lgg_chaos: cannot write " << path);
  out << text;
  out.flush();
  LGG_CHECK(out.good(), "lgg_chaos: short write to " << path);
}

std::string read_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LGG_CHECK(in.good(), "lgg_chaos: cannot read " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

// ------------------------------------------------------------------ worker

// One resilient run with checkpointing + full observability; artifacts
// land at <out>.{report,log,trace.json,spans,prom} on completion.  With
// --worker-kill K the process hard-exits (code 42) right after the K-th
// checkpoint write — destructors skipped, buffers dropped, exactly what a
// SIGKILL leaves behind (the checkpoint itself is already renamed into
// place by then).
int cmd_worker(const Config& c) {
  const graph::Graph g = graph::gnm(c.n, c.m, c.seed);

  gpusim::DeviceSpec dev = gpusim::tesla_c1060();
  dev.name = "C1060-chaos";
  dev.shared_mem_bytes = c.shared_mem;

  obs::Session session;
  std::optional<resilience::FaultInjector> inj;
  if (c.fault_rate > 0.0)
    inj.emplace(c.fault_seed, resilience::FaultRates::uniform(c.fault_rate));

  resilience::RunnerOptions opts;
  opts.device = &dev;
  opts.exec = c.threads <= 1 ? gpusim::ExecPolicy::serial()
                             : gpusim::ExecPolicy::parallel(
                                   static_cast<std::size_t>(c.threads));
  opts.faults = inj ? &*inj : nullptr;
  opts.obs = &session;
  opts.checkpoint_path = c.ckpt;
  opts.checkpoint_every_chunks = c.every;

  std::uint32_t writes = 0;
  if (c.worker_kill > 0)
    opts.on_checkpoint = [&](std::uint32_t) {
      if (++writes == c.worker_kill) std::_Exit(42);
    };

  resilience::RunnerReport report;
  try {
    report = c.resume ? resilience::resume_resilient(g, opts)
                      : resilience::run_resilient(g, opts);
  } catch (const resilience::CheckpointError& e) {
    std::cerr << "lgg_chaos worker: checkpoint unusable ("
              << resilience::checkpoint_kind_name(e.kind())
              << "): " << e.what() << "\n";
    return 3;
  }

  std::ostringstream rep;
  rep << report << "\n";
  write_or_die(c.out + ".report", rep.str());
  write_or_die(c.out + ".log", report.log);
  write_or_die(c.out + ".trace.json", obs::chrome_trace_json(session.tracer));
  write_or_die(c.out + ".spans", obs::span_tree_text(session.tracer));
  write_or_die(c.out + ".prom", session.metrics.prometheus_text());
  std::cout << "worker: chunks=" << report.chunks.size()
            << " triangles=" << report.triangles
            << " certified=" << (report.certified ? 1 : 0) << "\n";
  return 0;
}

// ------------------------------------------------------------------ parent

/// Spawn a worker subprocess and return its exit code (-1: died weirdly).
int spawn(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status < 0) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

int cmd_resilient(const char* argv0, const Config& c) {
  if (c.dir.empty()) usage("resilient needs --dir DIR");
  if (c.kill_after == 0) usage("--kill-after must be >= 1");
  ::mkdir(c.dir.c_str(), 0777);  // fine if it already exists

  std::ostringstream common;
  common << "'" << argv0 << "' worker --gnm=" << c.n << "," << c.m << ","
         << c.seed << " --every=" << c.every << " --threads=" << c.threads
         << " --shared-mem=" << c.shared_mem;
  if (c.fault_rate > 0.0)
    common << " --faults=" << c.fault_rate << "," << c.fault_seed;

  const std::string ref_ckpt = c.dir + "/ref.ckpt";
  const std::string run_ckpt = c.dir + "/run.ckpt";
  int failures = 0;
  const auto check = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "ok:   " : "FAIL: ") << what << "\n";
    if (!ok) ++failures;
  };

  // 1. Reference: uninterrupted, checkpointing on (cadence must not
  // perturb any artifact).
  const int ref_rc = spawn(common.str() + " --ckpt '" + ref_ckpt +
                           "' --out '" + c.dir + "/ref'");
  check(ref_rc == 0, "reference run completed (exit " +
                         std::to_string(ref_rc) + ")");
  check(!file_exists(ref_ckpt), "reference checkpoint removed on completion");

  // 2. Victim: same run, hard-killed right after checkpoint K.
  const int victim_rc =
      spawn(common.str() + " --ckpt '" + run_ckpt + "' --out '" + c.dir +
            "/run' --worker-kill " + std::to_string(c.kill_after));
  check(victim_rc == 42, "victim killed after " +
                             std::to_string(c.kill_after) +
                             " checkpoint(s) (exit " +
                             std::to_string(victim_rc) + ")");
  check(file_exists(run_ckpt), "victim left a durable checkpoint behind");

  // 3. Resume: restart from the victim's checkpoint, run to completion.
  const int resume_rc = spawn(common.str() + " --ckpt '" + run_ckpt +
                              "' --out '" + c.dir + "/run' --resume");
  check(resume_rc == 0,
        "resumed run completed (exit " + std::to_string(resume_rc) + ")");
  check(!file_exists(run_ckpt), "resumed checkpoint removed on completion");

  // 4. Byte-compare every artifact: resumed vs reference.
  if (failures == 0) {
    for (const char* ext :
         {".report", ".log", ".trace.json", ".spans", ".prom"}) {
      const std::string ref = read_or_die(c.dir + "/ref" + ext);
      const std::string got = read_or_die(c.dir + "/run" + ext);
      check(ref == got, std::string("artifact byte-identical: ") + ext +
                            " (" + std::to_string(got.size()) + " bytes)");
    }
  } else {
    std::cout << "skip: artifact comparison (protocol violations above)\n";
  }

  std::cout << (failures == 0 ? "chaos: PASS" : "chaos: FAIL") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    const Config c = parse_config(args);
    if (command == "resilient") return cmd_resilient(argv[0], c);
    if (command == "worker") return cmd_worker(c);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  usage(("unknown command: " + command).c_str());
}

// lgg_cli — command-line front end for the largegraph-gpu library.
//
//   lgg_cli generate <kind> <out.txt> [params...]   synthesize a graph file
//   lgg_cli stats    <graph.txt>                    structural statistics
//   lgg_cli count    <graph.txt> [algo] [budget]    triangle counting
//   lgg_cli list     <graph.txt> [limit]            triangle listing
//   lgg_cli suggest  <graph.txt> <vertex> [k]       friend suggestions
//   lgg_cli ingest   <graph.txt>                    parallel loader stats
//   lgg_cli gpu      <graph.txt> [layout] [device]  simulated GPU run
//   lgg_cli hybrid   <graph.txt>                    Sections V-VI pipeline
//   lgg_cli resilient <graph.txt>                   fault-tolerant pipeline
//   lgg_cli triangle <graph.txt>                    resilient alias: the
//                                                   full traced pipeline
//   lgg_cli approx   <graph.txt> <doulion|wedges> <param>
//
// The gpu/hybrid/resilient/triangle commands accept the observability
// flags (DESIGN.md §12): --trace=FILE writes Chrome trace-event JSON
// (load it in Perfetto / chrome://tracing), --trace-tree[=FILE] the
// human-readable span tree, --metrics[=FILE] a Prometheus text dump, and
// --threads N pins the host ExecPolicy — every exported artifact is
// byte-identical across thread counts.
//
// Graph files are SNAP-format edge lists.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lgg.hpp"

namespace {

using namespace lgg;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage:\n"
      "  lgg_cli generate gnp     <out> <n> <p> [seed]\n"
      "  lgg_cli generate gnm     <out> <n> <m> [seed]\n"
      "  lgg_cli generate ba      <out> <n> <attach> [seed]\n"
      "  lgg_cli generate rmat    <out> <scale> <edge_factor> [seed]\n"
      "  lgg_cli generate layered <out> <n> <width> <p_in> <p_between> [seed]\n"
      "  lgg_cli stats   <graph>\n"
      "  lgg_cli count   <graph> [forward|als|bitmatrix|external|dodg] "
      "[budget_edges] [--orient]\n"
      "  lgg_cli list    <graph> [limit]\n"
      "  lgg_cli suggest <graph> <vertex> [k]\n"
      "  lgg_cli ingest  <graph> [--serial] [--orient] [--pad]\n"
      "                  [--chunk-bytes N] [--threads N]   parallel loader\n"
      "                  stats + `digest:` line (byte-identical across N)\n"
      "  lgg_cli gpu     <graph> [naive|coalesced|improved] "
      "[C1060|C2050|C2070] [--sancheck[=report|strict]]\n"
      "  lgg_cli hybrid  <graph> [--sancheck[=report|strict]]\n"
      "  lgg_cli resilient <graph> [--faults RATE[,SEED]] [--max-retries N]\n"
      "                    [--failover cpu|stream|off] [--no-verify] [--log]\n"
      "  lgg_cli triangle <graph> [resilient options]   (resilient alias)\n"
      "  lgg_cli approx  <graph> doulion <p> | wedges <samples>\n"
      "observability (gpu/hybrid/resilient/triangle):\n"
      "  --trace=FILE        Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --trace-tree[=FILE] human-readable span tree (stdout if bare)\n"
      "  --metrics[=FILE]    Prometheus text dump (stdout if bare)\n"
      "  --profile[=FILE]    lgg_prof counter file (stdout if bare); diff\n"
      "                      two with `lgg_prof diff` (DESIGN.md §17)\n"
      "  --profile-tree[=FILE] human hotspot report (stdout if bare)\n"
      "  --flamegraph[=FILE] collapsed stacks with modelled self-ns\n"
      "                      (pipe into flamegraph.pl; stdout if bare)\n"
      "  --trace-cap=N       cap recorded spans at N; drops surface as\n"
      "                      lgg_obs_spans_dropped_total\n"
      "  --threads N         host simulator threads (1 = serial); traces,\n"
      "                      metrics and profiles are byte-identical\n"
      "                      across N\n"
      "every command that reads a graph also accepts --threads N for the\n"
      "parallel ingest loader (identical result at any N)\n";
  std::exit(2);
}

/// Strip "--flag value" / "--flag=value" from args; true when present.
bool extract_value(std::vector<std::string>& args, const std::string& flag,
                   std::string& value) {
  const std::string joined = flag + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      if (it + 1 == args.end()) usage(("missing value for " + flag).c_str());
      value = *(it + 1);
      args.erase(it, it + 2);
      return true;
    }
    if (it->compare(0, joined.size(), joined) == 0) {
      value = it->substr(joined.size());
      args.erase(it);
      return true;
    }
  }
  return false;
}

bool extract_flag(std::vector<std::string>& args, const std::string& flag) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

/// Strip "--flag" (bare) or "--flag=value" from args, never consuming the
/// next token (for flags whose value is optional).  Returns true when the
/// flag was present; value is "-" for the bare form.
bool extract_optional_value(std::vector<std::string>& args,
                            const std::string& flag, std::string& value) {
  const std::string joined = flag + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      value = "-";
      args.erase(it);
      return true;
    }
    if (it->compare(0, joined.size(), joined) == 0) {
      value = it->substr(joined.size());
      args.erase(it);
      return true;
    }
  }
  return false;
}

/// Strip a "--threads N" flag (for commands where it only drives the
/// ingest loader); 0 = default (shared pool).
std::size_t extract_threads(std::vector<std::string>& args) {
  std::string value;
  if (!extract_value(args, "--threads", value)) return 0;
  return static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
}

/// Every command loads through the parallel ingest pipeline — its output
/// is byte-identical to the serial loader at any thread count.
graph::Graph load(const std::string& path, std::size_t threads = 0) {
  ingest::IngestOptions opts;
  opts.threads = threads;
  return ingest::load_snap_file(path, opts).loaded.graph;
}

std::uint64_t arg_u64(const std::vector<std::string>& args, std::size_t i,
                      std::uint64_t fallback) {
  return i < args.size() ? std::strtoull(args[i].c_str(), nullptr, 10)
                         : fallback;
}

double arg_f64(const std::vector<std::string>& args, std::size_t i,
               double fallback) {
  return i < args.size() ? std::strtod(args[i].c_str(), nullptr) : fallback;
}

/// Strip a --sancheck flag from the argument list.  Bare --sancheck (and
/// --sancheck=report) report hazards; --sancheck=strict makes the run
/// throw on the first hazard (non-zero exit).
sancheck::SancheckMode extract_sancheck(std::vector<std::string>& args) {
  auto mode = sancheck::SancheckMode::kOff;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--sancheck" || *it == "--sancheck=report") {
      mode = sancheck::SancheckMode::kReport;
      it = args.erase(it);
    } else if (*it == "--sancheck=strict") {
      mode = sancheck::SancheckMode::kStrict;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  return mode;
}

int cmd_generate(const std::vector<std::string>& args) {
  if (args.size() < 2) usage("generate needs a kind and an output path");
  const std::string& kind = args[0];
  const std::string& out = args[1];
  graph::Graph g(0);
  if (kind == "gnp") {
    g = graph::erdos_renyi(arg_u64(args, 2, 1000), arg_f64(args, 3, 0.01),
                           arg_u64(args, 4, 1));
  } else if (kind == "gnm") {
    g = graph::gnm(arg_u64(args, 2, 1000), arg_u64(args, 3, 5000),
                   arg_u64(args, 4, 1));
  } else if (kind == "ba") {
    g = graph::barabasi_albert(arg_u64(args, 2, 1000), arg_u64(args, 3, 4),
                               arg_u64(args, 4, 1));
  } else if (kind == "rmat") {
    g = graph::rmat(static_cast<unsigned>(arg_u64(args, 2, 12)),
                    arg_u64(args, 3, 8), arg_u64(args, 4, 1));
  } else if (kind == "layered") {
    g = graph::layered_random(arg_u64(args, 2, 5000), arg_u64(args, 3, 300),
                              arg_f64(args, 4, 0.012), arg_f64(args, 5, 0.006),
                              arg_u64(args, 6, 1));
  } else {
    usage("unknown generator kind");
  }
  graph::write_snap_edge_list_file(out, g, "generated by lgg_cli " + kind);
  std::cout << "wrote " << out << ": " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges\n";
  return 0;
}

int cmd_stats(std::vector<std::string> args) {
  const std::size_t threads = extract_threads(args);
  if (args.empty()) usage("stats needs a graph file");
  const graph::Graph g = load(args[0], threads);
  const auto deg = graph::degree_stats(g);
  const auto cores = graph::core_decomposition(g);
  const auto comps = graph::connected_components(g);

  TextTable t({"metric", "value"});
  t.new_row().add("vertices").add(std::uint64_t{g.num_vertices()});
  t.new_row().add("edges").add(std::uint64_t{g.num_edges()});
  t.new_row().add("components").add(std::uint64_t{comps.count});
  t.new_row().add("density").add(graph::density(g), 6);
  t.new_row().add("degree min/median/mean/max")
      .add(std::to_string(deg.min) + " / " + std::to_string(deg.median) +
           " / " + std::to_string(deg.mean) + " / " + std::to_string(deg.max));
  t.new_row().add("degeneracy").add(std::uint64_t{cores.degeneracy});
  t.new_row().add("diameter (double-sweep lower bound)")
      .add(std::uint64_t{graph::diameter_double_sweep(g)});
  t.new_row().add("assortativity").add(graph::degree_assortativity(g), 4);
  t.new_row().add("transitivity").add(core::transitivity(g), 6);
  t.print(std::cout);
  return 0;
}

int cmd_count(std::vector<std::string> args) {
  const std::size_t threads = extract_threads(args);
  const bool orient = extract_flag(args, "--orient");
  if (args.empty()) usage("count needs a graph file");
  const std::string algo =
      orient ? "dodg" : (args.size() > 1 ? args[1] : "forward");
  Stopwatch wall;
  std::uint64_t triangles = 0;
  if (algo == "dodg") {
    // Degree-ordered orientation: half the adjacency, sqrt(2m)-bounded
    // out-degrees (DESIGN.md §13).
    ThreadPool* pool = threads == 1 ? nullptr : &ThreadPool::shared();
    const auto og = ingest::orient_by_degree(load(args[0], threads), pool);
    triangles = ingest::count_triangles_oriented(og, pool);
  } else if (algo == "forward") {
    triangles = core::count_triangles_forward(load(args[0], threads));
  } else if (algo == "als") {
    triangles = core::count_triangles_cpu_als(load(args[0], threads)).triangles;
  } else if (algo == "bitmatrix") {
    triangles = core::count_triangles_bitmatrix(
        graph::BitMatrix::from_graph(load(args[0], threads)));
  } else if (algo == "external") {
    const stream::EdgeStream es(args[0]);
    const auto r =
        stream::count_triangles_external(es, arg_u64(args, 2, 1u << 20));
    std::cout << "external: " << r.intervals << " intervals, " << r.passes
              << " passes, peak " << r.peak_edges << " edges in memory\n";
    triangles = r.triangles;
  } else {
    usage("unknown counting algorithm");
  }
  std::cout << "triangles: " << triangles << "  (" << algo << ", "
            << format_seconds(wall.elapsed_s()) << ")\n";
  return 0;
}

int cmd_list(std::vector<std::string> args) {
  const std::size_t threads = extract_threads(args);
  if (args.empty()) usage("list needs a graph file");
  const graph::Graph g = load(args[0], threads);
  const std::uint64_t limit = arg_u64(args, 1, 20);
  const auto triangles = core::list_triangles(g);
  std::cout << triangles.size() << " triangles";
  if (triangles.size() > limit) std::cout << " (showing first " << limit << ")";
  std::cout << "\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(triangles.size(), limit);
       ++i)
    std::cout << "  {" << triangles[i][0] << ", " << triangles[i][1] << ", "
              << triangles[i][2] << "}\n";
  return 0;
}

int cmd_suggest(std::vector<std::string> args) {
  const std::size_t threads = extract_threads(args);
  if (args.size() < 2) usage("suggest needs a graph file and a vertex");
  const graph::Graph g = load(args[0], threads);
  const auto v = static_cast<graph::Vertex>(arg_u64(args, 1, 0));
  for (const auto& s :
       core::suggest_friends(g, v, arg_u64(args, 2, 10)))
    std::cout << "  " << s.candidate << "  (" << s.mutual_friends
              << " mutual)\n";
  return 0;
}

/// The observability flags shared by the gpu/hybrid/resilient/triangle
/// commands (see usage()).  extract() strips them from args; session()
/// returns nullptr when no flag armed tracing (drivers then skip all
/// instrumentation); finish() writes the requested exports after the run.
struct ObsCli {
  obs::Session sess;
  prof::Profiler profiler{&sess};  // attribution from the session's tracer
  bool enabled = false;
  bool profiling = false;
  std::string trace_path;
  std::string tree_path;         // "-" = stdout
  std::string metrics_path;      // "-" = stdout
  std::string profile_path;      // "-" = stdout
  std::string profile_tree_path; // "-" = stdout
  std::string flamegraph_path;   // "-" = stdout
  bool have_threads = false;
  std::size_t threads = 0;  // also drives the ingest loader
  gpusim::ExecPolicy exec;

  static ObsCli extract(std::vector<std::string>& args) {
    ObsCli o;
    std::string value;
    if (extract_value(args, "--trace", value)) {
      o.trace_path = value;
      o.enabled = true;
    }
    if (extract_optional_value(args, "--trace-tree", value)) {
      o.tree_path = value;
      o.enabled = true;
    }
    if (extract_optional_value(args, "--metrics", value)) {
      o.metrics_path = value;
      o.enabled = true;
    }
    if (extract_optional_value(args, "--profile", value)) {
      o.profile_path = value;
      o.enabled = o.profiling = true;
    }
    if (extract_optional_value(args, "--profile-tree", value)) {
      o.profile_tree_path = value;
      o.enabled = o.profiling = true;
    }
    if (extract_optional_value(args, "--flamegraph", value)) {
      o.flamegraph_path = value;
      o.enabled = true;  // flamegraph is a pure function of the span tree
    }
    if (extract_value(args, "--trace-cap", value)) {
      o.sess.tracer.set_span_cap(
          static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10)));
      o.enabled = true;
    }
    if (extract_value(args, "--threads", value)) {
      const auto n =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
      o.exec = n <= 1 ? gpusim::ExecPolicy::serial()
                      : gpusim::ExecPolicy::parallel(n);
      o.have_threads = true;
      o.threads = n;
    }
    return o;
  }

  obs::Session* session() { return enabled ? &sess : nullptr; }
  gpusim::ProfilerHook* prof() { return profiling ? &profiler : nullptr; }

  void write_or_die(const std::string& path, const std::string& text) {
    if (path == "-") {
      std::cout << text;
      return;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) usage(("cannot write " + path).c_str());
    out << text;
  }

  void finish() {
    if (!enabled) return;
    // Observable span loss: only emitted when the cap actually dropped
    // spans, so default runs keep their existing metric set.
    if (sess.tracer.dropped() > 0)
      sess.metrics.count("lgg_obs_spans_dropped_total", sess.tracer.dropped());
    if (profiling) profiler.export_metrics(sess.metrics);
    if (!trace_path.empty())
      write_or_die(trace_path,
                   obs::chrome_trace_json(
                       sess.tracer, profiling ? profiler.counter_track_events()
                                              : std::vector<std::string>{}));
    if (!tree_path.empty())
      write_or_die(tree_path, obs::span_tree_text(sess.tracer));
    if (!profile_path.empty())
      write_or_die(profile_path, profiler.profile_text());
    if (!profile_tree_path.empty())
      write_or_die(profile_tree_path, profiler.profile_tree_text());
    if (!flamegraph_path.empty())
      write_or_die(flamegraph_path, prof::flamegraph_text(sess.tracer));
    if (!metrics_path.empty())
      write_or_die(metrics_path, sess.metrics.prometheus_text());
  }
};

int cmd_gpu(std::vector<std::string> args) {
  core::GpuTriangleOptions opts;
  opts.sancheck = extract_sancheck(args);
  ObsCli ocli = ObsCli::extract(args);
  opts.obs = ocli.session();
  opts.prof = ocli.prof();
  if (ocli.have_threads) opts.exec = ocli.exec;
  if (args.empty()) usage("gpu needs a graph file");
  const graph::Graph g = load(args[0], ocli.threads);
  const std::string layout = args.size() > 1 ? args[1] : "improved";
  if (layout == "naive")
    opts.layout = core::GpuLayout::kNaive;
  else if (layout == "coalesced")
    opts.layout = core::GpuLayout::kCoalesced;
  else if (layout == "improved")
    opts.layout = core::GpuLayout::kCoalescedAntiCamping;
  else
    usage("unknown layout");
  if (args.size() > 2) opts.device = &gpusim::device_by_name(args[2]);
  opts.max_simulated_tests = 2000000;
  const auto r = core::count_triangles_gpu(g, opts);
  std::cout << r.kernel << "\n";
  std::cout << "device bytes " << format_bytes(r.device_bytes)
            << ", transfer " << format_seconds(r.transfer.time_s)
            << ", end-to-end " << format_seconds(r.total_time_s) << "\n";
  if (r.exact) std::cout << "triangles (exact functional run): "
                         << r.triangles << "\n";
  if (opts.sancheck != sancheck::SancheckMode::kOff) {
    std::cout << r.kernel.hazards << "\n";
    // The static half: prove the launch's footprint from the combinadic
    // formulas alone (no simulation).
    std::cout << sancheck::lint_footprint(core::als_footprint_spec(g, opts))
              << "\n";
  }
  ocli.finish();
  return 0;
}

int cmd_hybrid(std::vector<std::string> args) {
  core::HybridOptions opts;
  opts.sancheck = extract_sancheck(args);
  ObsCli ocli = ObsCli::extract(args);
  opts.obs = ocli.session();
  opts.prof = ocli.prof();
  if (ocli.have_threads) opts.exec = ocli.exec;
  if (args.empty()) usage("hybrid needs a graph file");
  opts.max_simulated_tests_per_chunk = 100000;
  const auto r = core::count_triangles_hybrid(load(args[0], ocli.threads), opts);
  std::cout << "chunks: " << r.shared_chunks << " shared-resident, "
            << r.global_chunks << " global-resident\n"
            << "makespan " << format_seconds(r.makespan_s) << " on "
            << gpusim::tesla_c1060().sm_count << " SMs (Eq. 6 estimate "
            << format_seconds(r.eq6_time_s) << ")\n"
            << "end-to-end " << format_seconds(r.total_time_s) << "\n";
  if (r.exact) std::cout << "triangles: " << r.triangles << "\n";
  if (opts.sancheck != sancheck::SancheckMode::kOff)
    std::cout << r.hazards << "\n";
  ocli.finish();
  return 0;
}

int cmd_resilient(std::vector<std::string> args) {
  resilience::RunnerOptions opts;
  opts.sancheck = extract_sancheck(args);
  ObsCli ocli = ObsCli::extract(args);
  opts.obs = ocli.session();
  opts.prof = ocli.prof();
  if (ocli.have_threads) opts.exec = ocli.exec;

  resilience::FaultInjector injector(0, resilience::FaultRates{});
  std::string value;
  if (extract_value(args, "--faults", value)) {
    // RATE or RATE,SEED — e.g. --faults=0.1,7
    const auto comma = value.find(',');
    const double rate =
        std::strtod(value.substr(0, comma).c_str(), nullptr);
    const std::uint64_t seed =
        comma == std::string::npos
            ? 1
            : std::strtoull(value.c_str() + comma + 1, nullptr, 10);
    injector = resilience::FaultInjector(seed,
                                         resilience::FaultRates::uniform(rate));
    opts.faults = &injector;
  }
  if (extract_value(args, "--max-retries", value))
    opts.retry.max_retries =
        static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
  if (extract_value(args, "--failover", value)) {
    if (value == "cpu")
      opts.failover = resilience::Failover::kCpu;
    else if (value == "stream")
      opts.failover = resilience::Failover::kStream;
    else if (value == "off")
      opts.failover = resilience::Failover::kOff;
    else
      usage(("unknown failover mode: " + value).c_str());
  }
  if (extract_flag(args, "--no-verify")) opts.verify = false;
  if (extract_flag(args, "--no-salvage")) opts.salvage = false;
  if (extract_value(args, "--checkpoint", value)) opts.checkpoint_path = value;
  if (extract_value(args, "--checkpoint-every", value))
    opts.checkpoint_every_chunks =
        static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
  const bool resume = extract_flag(args, "--resume");
  const bool show_log = extract_flag(args, "--log");
  if (args.empty()) usage("resilient needs a graph file");
  if (args.size() > 1)
    usage(("unknown resilient option: " + args[1]).c_str());
  if (resume && opts.checkpoint_path.empty())
    usage("--resume requires --checkpoint=FILE");

  const graph::Graph g = load(args[0], ocli.threads);
  resilience::RunnerReport report;
  if (resume) {
    try {
      report = resilience::resume_resilient(g, opts);
    } catch (const resilience::CheckpointError& e) {
      // Typed rejection (missing, corrupt, version, graph/plan mismatch):
      // warn and complete the run cold — never trust a bad checkpoint.
      std::cerr << "lgg_cli: checkpoint unusable ("
                << resilience::checkpoint_kind_name(e.kind())
                << "): " << e.what() << "; starting cold\n";
      report = resilience::run_resilient(g, opts);
    }
  } else {
    report = resilience::run_resilient(g, opts);
  }
  std::cout << report;
  if (show_log) std::cout << "\n" << report.log;
  ocli.finish();
  // Exact-or-fail: an uncertified run (failover off and a chunk exhausted
  // its retries) is a non-zero exit so scripts can rely on the count.
  return report.certified ? 0 : 1;
}

/// `lgg_cli ingest` — load a SNAP file through the parallel pipeline (or
/// the serial reference loader with --serial) and report content counters,
/// phase timings and the LoadedGraph digest.  The `digest:` line is the
/// determinism contract made greppable: ci/check.sh compares it between
/// --serial and --threads 8 runs.
int cmd_ingest(std::vector<std::string> args) {
  ObsCli ocli = ObsCli::extract(args);
  const bool serial = extract_flag(args, "--serial");
  const bool orient = extract_flag(args, "--orient");
  const bool pad = extract_flag(args, "--pad");
  std::string value;
  std::size_t chunk_bytes = 0;
  if (extract_value(args, "--chunk-bytes", value))
    chunk_bytes = std::strtoull(value.c_str(), nullptr, 10);
  if (args.empty()) usage("ingest needs a graph file");

  graph::LoadedGraph loaded;
  ingest::IngestStats stats;
  Stopwatch wall;
  if (serial) {
    graph::SnapReadOptions sopts;
    sopts.pad_to_declared_nodes = pad;
    loaded = graph::read_snap_edge_list_file(args[0], sopts);
    stats.total_s = wall.elapsed_s();
    stats.threads = 1;
  } else {
    ingest::IngestOptions opts;
    opts.threads = ocli.threads;
    opts.pad_to_declared_nodes = pad;
    if (chunk_bytes > 0) opts.chunk_bytes = chunk_bytes;
    opts.obs = ocli.session();
    auto r = ingest::load_snap_file(args[0], opts);
    loaded = std::move(r.loaded);
    stats = r.stats;
  }
  const graph::Graph& g = loaded.graph;

  std::cout << "loader: " << (serial ? "serial" : "parallel") << " (threads "
            << stats.threads;
  if (!serial) std::cout << ", chunks " << stats.chunks;
  std::cout << ")\n";
  std::cout << "vertices: " << g.num_vertices() << "\n"
            << "edges: " << g.num_edges() << "\n"
            << "digest: " << graph::digest_hex(graph::loaded_graph_digest(loaded))
            << "\n";
  if (!serial) {
    std::cout << "bytes: " << format_bytes(stats.bytes) << ", lines "
              << stats.lines << " (" << stats.edge_lines << " edges, "
              << stats.comment_lines << " comments)\n"
              << "dropped: " << stats.duplicate_edges << " duplicates, "
              << stats.self_loops << " self-loops\n"
              << "phases: read " << format_seconds(stats.read_s) << ", parse "
              << format_seconds(stats.parse_s) << ", compact "
              << format_seconds(stats.compact_s) << ", build "
              << format_seconds(stats.build_s) << "\n";
  }
  const double total = stats.total_s > 0 ? stats.total_s : wall.elapsed_s();
  std::cout << "total " << format_seconds(total) << " ("
            << static_cast<std::uint64_t>(
                   total > 0 ? static_cast<double>(g.num_edges()) / total : 0)
            << " edges/sec)\n";

  if (orient) {
    ThreadPool* pool =
        (serial || ocli.threads == 1) ? nullptr : &ThreadPool::shared();
    const auto og = ingest::orient_by_degree(g, pool);
    std::cout << "oriented: " << og.num_arcs() << " arcs, max out-degree "
              << og.max_out_degree << "\n"
              << "triangles (dodg): "
              << ingest::count_triangles_oriented(og, pool) << "\n";
  }
  ocli.finish();
  return 0;
}

int cmd_approx(const std::vector<std::string>& args) {
  if (args.size() < 3) usage("approx needs: <graph> doulion|wedges <param>");
  const graph::Graph g = load(args[0]);
  if (args[1] == "doulion") {
    const auto r = core::doulion_estimate(g, arg_f64(args, 2, 0.5), 1);
    std::cout << "DOULION(p=" << r.p << "): estimate " << r.estimate
              << " from " << r.kept_edges << " sampled edges\n";
  } else if (args[1] == "wedges") {
    const auto r = core::wedge_sampling_estimate(g, arg_u64(args, 2, 100000), 1);
    std::cout << "wedge sampling (" << r.samples << " samples): estimate "
              << r.estimate << " (closed fraction " << r.closed_fraction
              << ")\n";
  } else {
    usage("unknown approx method");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "count") return cmd_count(args);
    if (command == "list") return cmd_list(args);
    if (command == "suggest") return cmd_suggest(args);
    if (command == "ingest") return cmd_ingest(args);
    if (command == "gpu") return cmd_gpu(args);
    if (command == "hybrid") return cmd_hybrid(args);
    if (command == "resilient") return cmd_resilient(args);
    // `triangle` is the front door for the traced pipeline: the resilient
    // runner exercises every span phase (plan, schedule, launch, retry).
    if (command == "triangle") return cmd_resilient(args);
    if (command == "approx") return cmd_approx(args);
    usage("unknown command");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

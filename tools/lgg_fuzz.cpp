// lgg_fuzz — differential fuzzing campaigns over every counting path.
//
//   lgg_fuzz campaign [options]      time- or iteration-boxed campaign
//   lgg_fuzz replay <repro.txt...>   replay repro files (regression check)
//   lgg_fuzz corpus <dir>            replay every repro in a directory
//   lgg_fuzz shrink <repro.txt>      re-shrink a repro in place
//
// A campaign with a fixed --seed and --iterations produces a
// bit-identical findings log regardless of --threads (the simulator's
// deterministic-reduction guarantee); CI diffs two runs to pin that.
// Exit status: 0 when clean, 1 when any finding (or replay disagreement)
// occurred, 2 on usage errors.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lgg.hpp"

namespace {

using namespace lgg;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage:\n"
      "  lgg_fuzz campaign [--iterations N] [--seconds S] [--seed S]\n"
      "                    [--corpus DIR] [--max-vertices N] [--threads T]\n"
      "                    [--max-findings N] [--no-shrink] [--serial-only]\n"
      "                    [--faults RATE[,SEED]] [--max-retries N]\n"
      "                    [--failover cpu|stream|off] [--trace-dir DIR]\n"
      "  lgg_fuzz replay <repro.txt> [...] [--trace FILE]\n"
      "                  [--trace-tree FILE] [--metrics FILE] [--threads T]\n"
      "  lgg_fuzz corpus <dir> [--trace FILE] [--trace-tree FILE]\n"
      "                  [--metrics FILE] [--threads T]\n"
      "  lgg_fuzz shrink <repro.txt>\n";
  std::exit(2);
}

/// Pop "--flag value" / "--flag" style options from args; returns true
/// and erases when found.
bool take_flag(std::vector<std::string>& args, const std::string& flag) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

/// Accepts both "--flag value" and "--flag=value".
bool take_value(std::vector<std::string>& args, const std::string& flag,
                std::string& value) {
  const std::string joined = flag + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      if (it + 1 == args.end()) usage(("missing value for " + flag).c_str());
      value = *(it + 1);
      args.erase(it, it + 2);
      return true;
    }
    if (it->compare(0, joined.size(), joined) == 0) {
      value = it->substr(joined.size());
      args.erase(it);
      return true;
    }
  }
  return false;
}

resilience::Failover parse_failover(const std::string& v) {
  if (v == "cpu") return resilience::Failover::kCpu;
  if (v == "stream") return resilience::Failover::kStream;
  if (v == "off") return resilience::Failover::kOff;
  usage(("unknown failover mode: " + v).c_str());
}

std::uint64_t take_u64(std::vector<std::string>& args, const std::string& flag,
                       std::uint64_t fallback) {
  std::string v;
  return take_value(args, flag, v) ? std::strtoull(v.c_str(), nullptr, 10)
                                   : fallback;
}

/// Replay one repro through the full cross-product; prints findings.
/// Returns the number of findings.
std::size_t replay_file(const std::string& path,
                        const fuzz::EngineOptions& opts) {
  const fuzz::Repro repro = fuzz::read_repro_file(path);
  std::size_t findings = 0;

  // Span name from the repro's own slug (file content, not file path),
  // so traces stay byte-identical wherever the corpus is checked out.
  obs::Scope span(opts.obs,
                  opts.obs != nullptr ? "fuzz/replay[" + repro.name + "]"
                                      : std::string(),
                  "replay");

  const std::uint64_t oracle = fuzz::oracle_triangles(repro.graph);
  if (oracle != repro.oracle) {
    std::cout << path << ": stored oracle " << repro.oracle
              << " != recomputed " << oracle << "\n";
    ++findings;
  }
  const auto found =
      fuzz::check_graph(repro.graph, repro.spec.empty() ? repro.name
                                                        : repro.spec,
                        opts);
  for (const auto& f : found) std::cout << path << ": " << describe(f) << "\n";
  findings += found.size();

  if (span) {
    span.arg("vertices",
             static_cast<std::uint64_t>(repro.graph.num_vertices()));
    span.arg("edges", static_cast<std::uint64_t>(repro.graph.num_edges()));
    span.arg("oracle", oracle);
    span.arg("findings", static_cast<std::uint64_t>(findings));
  }
  if (opts.obs != nullptr) {
    opts.obs->metrics.count("lgg_fuzz_replays_total");
    if (findings > 0)
      opts.obs->metrics.count("lgg_fuzz_replay_findings_total",
                              findings);
  }

  std::cout << path << ": " << repro.graph.num_vertices() << "v/"
            << repro.graph.num_edges() << "e oracle=" << oracle << " "
            << (findings ? "FINDINGS" : "ok") << "\n";
  return findings;
}

/// Shared --trace/--trace-tree/--metrics/--threads handling for replay
/// and corpus (the carried-over obs item: DESIGN.md §12).  The exported
/// artifacts are byte-identical across --threads settings: policy labels
/// omit thread counts and every span arg is repro-content-derived.
struct ReplayObs {
  obs::Session session;
  std::string trace_path, tree_path, metrics_path;

  void extract(std::vector<std::string>& args, fuzz::EngineOptions& opts) {
    bool enabled = false;
    std::string v;
    if (take_value(args, "--trace", v)) {
      trace_path = v;
      enabled = true;
    }
    if (take_value(args, "--trace-tree", v)) {
      tree_path = v;
      enabled = true;
    }
    if (take_value(args, "--metrics", v)) {
      metrics_path = v;
      enabled = true;
    }
    std::string threads;
    if (take_value(args, "--threads", threads)) {
      const auto n = std::strtoull(threads.c_str(), nullptr, 10);
      opts.policies = {gpusim::ExecPolicy::serial(),
                       gpusim::ExecPolicy::parallel(
                           n == 0 ? 1 : static_cast<std::size_t>(n))};
    }
    if (enabled) opts.obs = &session;
  }

  void finish() {
    const auto write = [](const std::string& path, const std::string& text) {
      std::ofstream out(path, std::ios::binary);
      if (!out) usage(("cannot write " + path).c_str());
      out << text;
    };
    if (!trace_path.empty())
      write(trace_path, obs::chrome_trace_json(session.tracer));
    if (!tree_path.empty())
      write(tree_path, obs::span_tree_text(session.tracer));
    if (!metrics_path.empty())
      write(metrics_path, session.metrics.prometheus_text());
  }
};

int cmd_campaign(std::vector<std::string> args) {
  fuzz::EngineOptions opts;
  opts.master_seed = take_u64(args, "--seed", 1);
  opts.max_iterations = take_u64(args, "--iterations", 500);
  opts.max_findings = take_u64(args, "--max-findings", 16);
  opts.limits.max_vertices = take_u64(args, "--max-vertices", 72);
  std::string seconds;
  if (take_value(args, "--seconds", seconds))
    opts.time_budget_s = std::strtod(seconds.c_str(), nullptr);
  std::string corpus;
  if (take_value(args, "--corpus", corpus)) opts.corpus_dir = corpus;
  if (take_flag(args, "--no-shrink")) opts.shrink = false;
  std::string threads;
  if (take_flag(args, "--serial-only")) {
    opts.policies = {gpusim::ExecPolicy::serial()};
  } else if (take_value(args, "--threads", threads)) {
    opts.policies = {gpusim::ExecPolicy::serial(),
                     gpusim::ExecPolicy::parallel(
                         std::strtoull(threads.c_str(), nullptr, 10))};
  }
  std::string faults;
  if (take_value(args, "--faults", faults)) {
    // RATE or RATE,SEED — e.g. --faults=0.1,7
    const auto comma = faults.find(',');
    opts.fault_rate = std::strtod(faults.substr(0, comma).c_str(), nullptr);
    if (comma != std::string::npos)
      opts.fault_seed =
          std::strtoull(faults.c_str() + comma + 1, nullptr, 10);
  }
  opts.fault_max_retries = static_cast<std::uint32_t>(
      take_u64(args, "--max-retries", opts.fault_max_retries));
  std::string failover;
  if (take_value(args, "--failover", failover))
    opts.fault_failover = parse_failover(failover);
  std::string trace_dir;
  obs::Session session;
  if (take_value(args, "--trace-dir", trace_dir)) opts.obs = &session;
  if (!args.empty()) usage(("unknown campaign option: " + args[0]).c_str());

  // Stream everything: log lines and repro paths print as they happen, and
  // the engine never buffers findings (or their graphs) in memory.
  opts.buffer_log = false;
  opts.keep_findings = false;
  opts.on_log_line = [](const std::string& line) {
    std::cout << line << "\n";
  };
  opts.on_finding = [](const fuzz::Finding& f) {
    if (!f.repro_path.empty())
      std::cout << "repro written: " << f.repro_path << "\n";
  };

  const auto result = fuzz::run_campaign(opts);
  if (opts.obs != nullptr) {
    // Campaign observability exports: Chrome trace, span tree and
    // Prometheus dump side by side in the requested directory.
    std::filesystem::create_directories(trace_dir);
    const auto write = [&](const char* name, const std::string& text) {
      const auto path = std::filesystem::path(trace_dir) / name;
      std::ofstream out(path, std::ios::binary);
      if (!out) usage(("cannot write " + path.string()).c_str());
      out << text;
      std::cout << "trace written: " << path.string() << "\n";
    };
    write("campaign-trace.json", obs::chrome_trace_json(session.tracer));
    write("campaign-spans.txt", obs::span_tree_text(session.tracer));
    write("campaign-metrics.prom", session.metrics.prometheus_text());
  }
  return result.findings_count == 0 ? 0 : 1;
}

int cmd_replay(std::vector<std::string> args) {
  fuzz::EngineOptions opts;
  ReplayObs robs;
  robs.extract(args, opts);
  if (args.empty()) usage("replay needs at least one repro file");
  std::size_t findings = 0;
  for (const auto& path : args) findings += replay_file(path, opts);
  robs.finish();
  return findings == 0 ? 0 : 1;
}

int cmd_corpus(std::vector<std::string> args) {
  fuzz::EngineOptions opts;
  ReplayObs robs;
  robs.extract(args, opts);
  if (args.size() != 1) usage("corpus needs exactly one directory");
  const auto files = fuzz::list_repro_files(args[0]);
  if (files.empty()) {
    std::cerr << "warning: no repro files in " << args[0] << "\n";
    return 0;
  }
  obs::Scope corpus_span(opts.obs, "fuzz/corpus", "replay");
  std::size_t findings = 0;
  for (const auto& path : files) findings += replay_file(path, opts);
  if (corpus_span) {
    corpus_span.arg("repros", static_cast<std::uint64_t>(files.size()));
    corpus_span.arg("findings", static_cast<std::uint64_t>(findings));
  }
  corpus_span.close();
  std::cout << files.size() << " repros, "
            << (findings ? "FINDINGS" : "all ok") << "\n";
  robs.finish();
  return findings == 0 ? 0 : 1;
}

int cmd_shrink(const std::vector<std::string>& args) {
  if (args.size() != 1) usage("shrink needs exactly one repro file");
  fuzz::Repro repro = fuzz::read_repro_file(args[0]);
  fuzz::EngineOptions opts;
  const auto findings = fuzz::check_graph(repro.graph, repro.spec, opts);
  if (findings.empty()) {
    std::cout << args[0] << ": no finding reproduces; nothing to shrink\n";
    return 0;
  }
  // Shrink against "any path still disagrees" so the repro stays a repro
  // for whichever path the original capture named.
  const auto still_fails = [&opts](const graph::Graph& g) {
    return !fuzz::check_graph(g, "", opts).empty();
  };
  const auto shrunk = fuzz::shrink_graph(repro.graph, still_fails);
  std::cout << args[0] << ": " << repro.graph.num_vertices() << "v/"
            << repro.graph.num_edges() << "e -> "
            << shrunk.graph.num_vertices() << "v/"
            << shrunk.graph.num_edges() << "e (" << shrunk.probes
            << " probes" << (shrunk.minimal ? ", 1-minimal" : "") << ")\n";
  repro.graph = shrunk.graph;
  repro.oracle = fuzz::oracle_triangles(shrunk.graph);
  fuzz::write_repro_file(args[0], repro);
  return 1;  // a reproducing finding is still a failure signal
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "campaign") return cmd_campaign(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "corpus") return cmd_corpus(args);
    if (command == "shrink") return cmd_shrink(args);
    usage("unknown command");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// lgg_lint — static determinism & plan-safety analyzer (DESIGN.md §14).
//
//   lgg_lint [--allowlist=FILE] PATH...   lint sources (files or dirs)
//   lgg_lint --list-rules                 print the rule catalog
//   lgg_lint --verify-plans [--loss-k=N]  whole-pipeline footprint +
//                                         schedule-repair proofs
//
// Exit codes: 0 clean, 1 violations/refuted proofs, 2 usage error.
// Output is deterministic: sources lint in sorted path order, plan checks
// run in a fixed suite order, and diagnostics print as
// `file:line: [rule] message` so CI diffs stay stable.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/plan_verify.hpp"
#include "lint/source_lint.hpp"

namespace {

int usage(std::ostream& os) {
  os << "usage: lgg_lint [--allowlist=FILE] PATH...\n"
        "       lgg_lint --list-rules\n"
        "       lgg_lint --verify-plans [--loss-k=N]\n"
        "exit codes: 0 clean, 1 violations found, 2 usage error\n";
  return 2;
}

void print(const lgg::lint::Violation& v) {
  std::cout << v.file << ':' << v.line << ": [" << v.rule << "] " << v.message
            << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool list_rules = false;
  bool verify_plans = false;
  std::uint32_t loss_k = 1;
  std::string allowlist_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--verify-plans") {
      verify_plans = true;
    } else if (arg.rfind("--loss-k=", 0) == 0) {
      try {
        const int k = std::stoi(arg.substr(9));
        if (k < 1 || k > 6) throw std::out_of_range("loss-k");
        loss_k = static_cast<std::uint32_t>(k);
      } catch (const std::exception&) {
        std::cerr << "lgg_lint: --loss-k wants an integer in [1, 6]\n";
        return usage(std::cerr);
      }
    } else if (arg.rfind("--allowlist=", 0) == 0) {
      allowlist_path = arg.substr(12);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lgg_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const lgg::lint::Rule& rule : lgg::lint::source_rules())
      std::cout << rule.id << "  " << rule.summary << '\n';
    return 0;
  }
  if (paths.empty() && !verify_plans) return usage(std::cerr);

  std::size_t violations = 0;

  if (!paths.empty()) {
    lgg::lint::Allowlist allow;
    if (!allowlist_path.empty()) {
      std::ifstream in(allowlist_path, std::ios::binary);
      if (!in) {
        std::cerr << "lgg_lint: cannot read allowlist '" << allowlist_path
                  << "'\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      allow = lgg::lint::Allowlist::parse(buf.str(), allowlist_path);
      for (const std::string& err : allow.parse_errors())
        std::cerr << "lgg_lint: " << err << '\n';
      if (!allow.parse_errors().empty()) return 2;
    }

    const std::vector<std::string> files = lgg::lint::collect_sources(paths);
    if (files.empty()) {
      std::cerr << "lgg_lint: no sources under the given paths\n";
      return 2;
    }
    std::vector<lgg::lint::Violation> found =
        lgg::lint::lint_files(files, allowlist_path.empty() ? nullptr : &allow);
    if (!allowlist_path.empty()) {
      for (lgg::lint::Violation& v : allow.stale())
        found.push_back(std::move(v));
    }
    for (const lgg::lint::Violation& v : found) print(v);
    violations += found.size();
    std::cout << "lgg_lint: " << files.size() << " file(s), " << found.size()
              << " violation(s)\n";
  }

  if (verify_plans) {
    const lgg::lint::PlanReport report =
        lgg::lint::verify_default_pipelines(loss_k);
    std::cout << report << '\n';
    violations += report.total_findings();
  }

  return violations == 0 ? 0 : 1;
}

// lgg_prof — profile-file differ: the CI perf-regression gate
// (DESIGN.md §17).
//
//   lgg_prof diff <a> <b> [--rtol X] [--atol Y] [--ignore REGEX]...
//
// Compares two `--profile` exports (or any Prometheus-style text: one
// "<key> <value>" sample per line, '#' comments skipped) with the
// ci/prom_diff contract: samples match iff |a - b| <= atol + rtol *
// max(|a|, |b|); keys present on only one side always differ; --ignore
// skips keys matching the regex (repeatable).  With no tolerances the
// comparison is exact — the determinism gate: a threads-1 and a
// threads-8 profile of the same workload must diff clean.
//
// Exit codes: 0 no differences, 1 differences found, 2 usage/IO error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lgg.hpp"

namespace {

using namespace lgg;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage:\n"
      "  lgg_prof diff <a> <b> [--rtol X] [--atol Y] [--ignore REGEX]...\n"
      "\n"
      "exit 0 when every sample matches within atol + rtol*max(|a|,|b|),\n"
      "1 on any difference (each printed to stdout), 2 on usage/IO error\n";
  std::exit(2);
}

bool take_value(std::vector<std::string>& args, const std::string& flag,
                std::string& value) {
  const std::string joined = flag + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      if (it + 1 == args.end()) usage(("missing value for " + flag).c_str());
      value = *(it + 1);
      args.erase(it, it + 2);
      return true;
    }
    if (it->compare(0, joined.size(), joined) == 0) {
      value = it->substr(joined.size());
      args.erase(it);
      return true;
    }
  }
  return false;
}

std::string read_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int cmd_diff(std::vector<std::string> args) {
  prof::DiffOptions opts;
  std::string value;
  if (take_value(args, "--rtol", value))
    opts.rtol = std::strtod(value.c_str(), nullptr);
  if (take_value(args, "--atol", value))
    opts.atol = std::strtod(value.c_str(), nullptr);
  while (take_value(args, "--ignore", value)) opts.ignore.push_back(value);
  if (args.size() != 2) usage("diff needs exactly two profile files");

  const std::string a = read_or_die(args[0]);
  const std::string b = read_or_die(args[1]);
  const prof::DiffResult res = prof::diff_profile_text(a, b, opts);
  for (const std::string& d : res.diffs) std::cout << d << "\n";
  if (!res.equal)
    std::cout << res.diffs.size() << " difference"
              << (res.diffs.size() == 1 ? "" : "s") << " between " << args[0]
              << " and " << args[1] << "\n";
  return res.equal ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "diff") return cmd_diff(std::move(args));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  usage(("unknown command: " + command).c_str());
}

// lgg_serve — resident-graph analytics serving loop (DESIGN.md §15).
//
//   lgg_serve run <script|-> [options]
//
// The script mixes catalog directives and requests, one per line
// ('#' comments and blank lines skipped):
//
//   load <name> <path>            make a SNAP file resident
//   gen <name> gnm <n> <m> <seed> make a synthetic G(n,m) graph resident
//   drain                         serve everything submitted so far
//   <tenant> <graph> <query> ...  submit a request (serve/request.hpp)
//
// Pending requests are drained at end of script.  Responses print to
// stdout in request-id (= script line) order; the deterministic request
// log, Chrome trace, span tree and Prometheus dump are available behind
// flags.  For a fixed script, every one of those artifacts is
// byte-identical at any --threads setting — the serving determinism
// contract the serve CI stage pins.
//
// Options:
//   --threads N      host ExecPolicy for device passes + ingest loader
//   --cache N        result-cache capacity in entries (default 64, 0 off)
//   --no-batching    one backend pass per request (no merging)
//   --quota N        per-tenant admission quota per drain (0 = unlimited)
//   --device-budget N  max ALS tests a graph may have for the resilient
//                      device triangle backend (larger graphs use DODG)
//   --log FILE       write the request log ("-" = stdout)
//   --trace FILE     Chrome trace JSON
//   --trace-tree FILE  indented span tree ("-" = stdout)
//   --metrics FILE   Prometheus text ("-" = stdout)
//   --profile FILE   lgg_prof counter file for the drain loop's backend
//                    passes ("-" = stdout; diff with `lgg_prof diff`)
//   --profile-tree FILE  human hotspot report ("-" = stdout)
//   --flamegraph FILE    collapsed stacks, modelled self-ns ("-" = stdout)
//   --trace-cap N    cap recorded spans; drops surface as
//                    lgg_obs_spans_dropped_total
//
// Resilience (DESIGN.md §16):
//   --faults RATE[,SEED]  inject device faults into resilient passes at
//                    the uniform RATE; responses stay byte-identical, only
//                    recovery counters move
//   --checkpoint FILE  durably save the serving state after every drain
//                    (write-to-temp + rename); removed at normal exit
//   --resume         restore FILE before replaying the script: already-
//                    served drains are skipped, output continues from the
//                    first unserved drain (unusable checkpoints warn and
//                    fall back to a cold start)
//   --exit-after-drains K  hard-exit (code 42) right after the K-th
//                    checkpoint write — the chaos harness's kill switch
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lgg.hpp"

namespace {

using namespace lgg;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage:\n"
      "  lgg_serve run <script|-> [--threads N] [--cache N]\n"
      "            [--no-batching] [--quota N] [--device-budget N]\n"
      "            [--log FILE] [--trace FILE] [--trace-tree FILE]\n"
      "            [--metrics FILE] [--profile FILE] [--profile-tree FILE]\n"
      "            [--flamegraph FILE] [--trace-cap N]\n"
      "            [--faults RATE[,SEED]]\n"
      "            [--checkpoint FILE] [--resume] [--exit-after-drains K]\n"
      "\n"
      "script lines:\n"
      "  load <name> <path>             resident SNAP file\n"
      "  gen <name> gnm <n> <m> <seed>  resident synthetic graph\n"
      "  drain                          serve pending requests\n"
      "  <tenant> <graph> triangles\n"
      "  <tenant> <graph> kclique <k>\n"
      "  <tenant> <graph> doulion <p> <seed>\n"
      "  <tenant> <graph> wedges <samples> <seed>\n"
      "  <tenant> <graph> bfs <source>\n"
      "  <tenant> <graph> cc <vertex>\n";
  std::exit(2);
}

bool take_flag(std::vector<std::string>& args, const std::string& flag) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

/// Accepts both "--flag value" and "--flag=value".
bool take_value(std::vector<std::string>& args, const std::string& flag,
                std::string& value) {
  const std::string joined = flag + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      if (it + 1 == args.end()) usage(("missing value for " + flag).c_str());
      value = *(it + 1);
      args.erase(it, it + 2);
      return true;
    }
    if (it->compare(0, joined.size(), joined) == 0) {
      value = it->substr(joined.size());
      args.erase(it);
      return true;
    }
  }
  return false;
}

std::uint64_t take_u64(std::vector<std::string>& args,
                       const std::string& flag, std::uint64_t fallback) {
  std::string value;
  if (!take_value(args, flag, value)) return fallback;
  return std::strtoull(value.c_str(), nullptr, 10);
}

void write_or_die(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) usage(("cannot write " + path).c_str());
  out << text;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

int cmd_run(std::vector<std::string> args) {
  obs::Session session;
  prof::Profiler profiler(&session);
  bool obs_enabled = false;
  bool profiling = false;
  std::string trace_path, tree_path, metrics_path, log_path, value;
  std::string profile_path, profile_tree_path, flamegraph_path;
  if (take_value(args, "--trace", value)) {
    trace_path = value;
    obs_enabled = true;
  }
  if (take_value(args, "--trace-tree", value)) {
    tree_path = value;
    obs_enabled = true;
  }
  if (take_value(args, "--metrics", value)) {
    metrics_path = value;
    obs_enabled = true;
  }
  if (take_value(args, "--profile", value)) {
    profile_path = value;
    obs_enabled = profiling = true;
  }
  if (take_value(args, "--profile-tree", value)) {
    profile_tree_path = value;
    obs_enabled = profiling = true;
  }
  if (take_value(args, "--flamegraph", value)) {
    flamegraph_path = value;
    obs_enabled = true;
  }
  if (take_value(args, "--trace-cap", value)) {
    session.tracer.set_span_cap(
        static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10)));
    obs_enabled = true;
  }
  take_value(args, "--log", log_path);

  const std::uint64_t threads = take_u64(args, "--threads", 0);
  serve::CatalogOptions copts;
  copts.threads = static_cast<std::size_t>(threads);
  copts.obs = obs_enabled ? &session : nullptr;

  serve::ServeOptions sopts;
  sopts.cache_capacity =
      static_cast<std::size_t>(take_u64(args, "--cache", 64));
  sopts.batching = !take_flag(args, "--no-batching");
  sopts.tenant_quota = take_u64(args, "--quota", 0);
  sopts.device_test_budget =
      take_u64(args, "--device-budget", sopts.device_test_budget);
  sopts.exec = threads <= 1
                   ? gpusim::ExecPolicy::serial()
                   : gpusim::ExecPolicy::parallel(
                         static_cast<std::size_t>(threads));
  sopts.obs = copts.obs;
  sopts.prof = profiling ? &profiler : nullptr;

  if (take_value(args, "--faults", value)) {
    const std::size_t comma = value.find(',');
    sopts.fault_rate = std::strtod(value.c_str(), nullptr);
    if (comma != std::string::npos)
      sopts.fault_seed =
          std::strtoull(value.c_str() + comma + 1, nullptr, 10);
    if (sopts.fault_rate <= 0.0 || sopts.fault_rate > 1.0)
      usage("--faults rate must be in (0, 1]");
  }
  std::string ckpt_path;
  take_value(args, "--checkpoint", ckpt_path);
  const bool resume = take_flag(args, "--resume");
  const std::uint64_t exit_after = take_u64(args, "--exit-after-drains", 0);
  if ((resume || exit_after > 0) && ckpt_path.empty())
    usage("--resume / --exit-after-drains need --checkpoint");

  if (args.empty()) usage("run needs a script path (or '-' for stdin)");
  const std::string script_path = args.front();
  args.erase(args.begin());
  if (!args.empty()) usage(("unknown run option: " + args[0]).c_str());

  std::ifstream file;
  if (script_path != "-") {
    file.open(script_path);
    if (!file) usage(("cannot open script " + script_path).c_str());
  }
  std::istream& in = script_path == "-" ? std::cin : file;

  serve::Catalog catalog(copts);
  serve::Service service(catalog, sopts);
  std::uint64_t next_id = 0;

  // Resume: restore the drain-boundary state and skip that many drains
  // (and every request line feeding them — their ids are already counted
  // in the restored cursor) while replaying the script.  load/gen lines
  // still execute: residency is recomputed, never checkpointed.
  std::uint64_t skip_drains = 0;
  if (resume) {
    try {
      const serve::ServeState st = serve::load_serve_state(ckpt_path);
      service.restore_state(st);
      next_id = st.next_id;
      skip_drains = st.drain_seq;
    } catch (const resilience::CheckpointError& e) {
      std::cerr << "lgg_serve: checkpoint unusable ("
                << resilience::checkpoint_kind_name(e.kind())
                << "): " << e.what() << "; starting cold\n";
    }
  }

  std::uint64_t drains_done = 0;
  std::uint64_t ckpt_writes = 0;
  std::size_t pending = 0;
  const auto drain = [&] {
    for (const serve::Response& resp : service.drain())
      std::cout << resp.line() << "\n";
    pending = 0;
    ++drains_done;
    if (!ckpt_path.empty()) {
      // Durability point: responses printed so far must survive the kill
      // the checkpoint protects against.
      std::cout.flush();
      serve::ServeState st = service.state();
      st.next_id = next_id;
      serve::save_serve_state(ckpt_path, st);
      ++ckpt_writes;
      if (exit_after > 0 && ckpt_writes == exit_after)
        std::_Exit(42);  // simulated kill: no unwinding, no flushing
    }
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> tok = split_ws(line);
    if (tok.empty()) continue;
    try {
      if (tok[0] == "load") {
        if (tok.size() != 3) usage("load needs: load <name> <path>");
        catalog.load_file(tok[1], tok[2]);
      } else if (tok[0] == "gen") {
        if (tok.size() != 6 || tok[2] != "gnm")
          usage("gen needs: gen <name> gnm <n> <m> <seed>");
        catalog.add(tok[1],
                    graph::gnm(std::strtoull(tok[3].c_str(), nullptr, 10),
                               std::strtoull(tok[4].c_str(), nullptr, 10),
                               std::strtoull(tok[5].c_str(), nullptr, 10)));
      } else if (tok[0] == "drain") {
        if (tok.size() != 1) usage("drain takes no arguments");
        if (drains_done < skip_drains)
          ++drains_done;  // already served before the checkpoint
        else
          drain();
      } else if (drains_done < skip_drains) {
        continue;  // request already served; its id is in the cursor
      } else {
        serve::Request req = serve::parse_request_line(line);
        req.id = next_id++;
        service.submit(std::move(req));
        ++pending;
      }
    } catch (const Error& e) {
      std::cerr << "error: " << script_path << ":" << lineno << ": "
                << e.what() << "\n";
      return 2;
    }
  }
  if (pending > 0) drain();
  if (!ckpt_path.empty()) std::remove(ckpt_path.c_str());

  if (session.tracer.dropped() > 0)
    session.metrics.count("lgg_obs_spans_dropped_total",
                          session.tracer.dropped());
  if (profiling) profiler.export_metrics(session.metrics);
  if (!log_path.empty()) write_or_die(log_path, service.log());
  if (!trace_path.empty())
    write_or_die(trace_path,
                 obs::chrome_trace_json(
                     session.tracer, profiling ? profiler.counter_track_events()
                                               : std::vector<std::string>{}));
  if (!tree_path.empty())
    write_or_die(tree_path, obs::span_tree_text(session.tracer));
  if (!profile_path.empty()) write_or_die(profile_path, profiler.profile_text());
  if (!profile_tree_path.empty())
    write_or_die(profile_tree_path, profiler.profile_tree_text());
  if (!flamegraph_path.empty())
    write_or_die(flamegraph_path, prof::flamegraph_text(session.tracer));
  if (!metrics_path.empty())
    write_or_die(metrics_path, session.metrics.prometheus_text());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "run") return cmd_run(std::move(args));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  usage(("unknown command: " + command).c_str());
}
